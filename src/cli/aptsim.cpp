// aptsim — command-line front end for the APT scheduling library.
//
//   aptsim generate --type 1|2 --kernels N --seed S [--out FILE] [--dot FILE]
//   aptsim run --policy SPEC [--graph FILE | --type T --kernels N --seed S]
//              [--rate GBPS] [--trace] [--csv FILE]
//   aptsim compare [--type T] [--alpha A] [--rate GBPS]
//   aptsim sweep [--type T] [--policies SPEC,...] [--alphas A,...]
//                [--rates 4,8] [--jobs N] [--reps R] [--seed S]
//                [--csv FILE] [--json FILE]
//   aptsim lut [--csv FILE]
//   aptsim policies
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/batch.hpp"
#include "core/experiments.hpp"
#include "core/policy_factory.hpp"
#include "core/report.hpp"
#include "core/runner.hpp"
#include "core/stream_plan.hpp"
#include "dag/generator.hpp"
#include "dag/serialize.hpp"
#include "lut/paper_data.hpp"
#include "lut/synthetic.hpp"
#include "net/topology.hpp"
#include "obs/profile.hpp"
#include "obs/trace_sink.hpp"
#include "scenario/scenario.hpp"
#include "sim/analysis.hpp"
#include "sim/gantt.hpp"
#include "sim/trace.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/string_utils.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace apt;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  bool has(const std::string& key) const { return options.count(key) != 0; }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (!util::starts_with(token, "--")) {
      throw std::invalid_argument("expected --option, got '" + token + "'");
    }
    const std::string key = token.substr(2);
    // Flags without values.
    if (key == "trace" || key == "gantt" || key == "analyze" ||
        key == "profile") {
      args.options[key] = "1";
      continue;
    }
    if (i + 1 >= argc)
      throw std::invalid_argument("option --" + key + " needs a value");
    args.options[key] = argv[++i];
  }
  return args;
}

/// The interconnect described by --topology/--bandwidth/--latency (see
/// src/net): ideal (default, uncontended), bus, crossbar, hier[:S], or the
/// routed kinds ring[:N], mesh:RxC, fattree[:K] whose transfers occupy a
/// multi-hop path. --bandwidth 0 (the default) tracks the link rate, so
/// --rates sweeps the fabric too. Unknown kinds and malformed shapes
/// (mesh:3x, fattree:0) throw and surface as a CLI error.
net::TopologySpec topology_from_args(const Args& args) {
  net::TopologySpec spec =
      net::parse_topology_spec(args.get("topology", "ideal"));
  spec.bandwidth_gbps = util::parse_double(args.get("bandwidth", "0"));
  spec.latency_ms = util::parse_double(args.get("latency", "0"));
  spec.validate();
  return spec;
}

/// Sweep form of --topology: a comma list ("ideal,ring,mesh:2x2") becomes
/// the plan's topology axis; --bandwidth/--latency apply to every entry.
/// Always returns at least one spec (default ideal).
std::vector<net::TopologySpec> topologies_from_args(const Args& args) {
  std::vector<net::TopologySpec> specs;
  for (const auto& token : util::split(args.get("topology", "ideal"), ',')) {
    if (util::trim(token).empty()) continue;
    net::TopologySpec spec = net::parse_topology_spec(util::trim(token));
    spec.bandwidth_gbps = util::parse_double(args.get("bandwidth", "0"));
    spec.latency_ms = util::parse_double(args.get("latency", "0"));
    spec.validate();
    specs.push_back(spec);
  }
  if (specs.empty())
    throw std::invalid_argument("--topology: no topologies given");
  return specs;
}

/// The synthetic platform described by --ccr / --hetero / --lut-seed,
/// calibrated against the first of `rates_gbps`. The one parse both `gen`
/// and `sweep` (and `run`) share, so identical flags always mean an
/// identical platform.
lut::SyntheticLutSpec synthetic_spec_from_args(
    const Args& args, const std::vector<double>& rates) {
  lut::SyntheticLutSpec spec;
  spec.ccr = util::parse_double(args.get("ccr", "0.5"));
  spec.heterogeneity = util::parse_double(args.get("hetero", "4"));
  spec.seed = util::parse_uint(args.get("lut-seed", "1"));
  if (!rates.empty()) spec.link_rate_gbps = rates.front();
  return spec;
}

bool wants_synthetic_platform(const Args& args) {
  return args.has("ccr") || args.has("hetero") || args.has("lut-seed");
}

/// The lookup table a command costs against: an explicit --lut CSV, the
/// synthetic platform flags, or (default) the paper's measured table.
/// Mixing the two explicit forms is ambiguous and rejected rather than
/// silently resolved.
lut::LookupTable table_from_args(const Args& args,
                                 const std::vector<double>& rates) {
  if (args.has("lut")) {
    if (wants_synthetic_platform(args))
      throw std::invalid_argument(
          "--lut conflicts with --ccr/--hetero/--lut-seed: pass either a "
          "saved table or the synthetic platform knobs, not both");
    return lut::LookupTable::from_csv_file(args.get("lut", ""));
  }
  if (wants_synthetic_platform(args))
    return lut::synthetic_lookup_table(synthetic_spec_from_args(args, rates));
  return lut::paper_lookup_table();
}

dag::Dag graph_from_args(const Args& args, const dag::KernelPool& pool) {
  dag::Dag graph = [&] {
    if (args.has("graph")) return dag::load_text_file(args.get("graph", ""));
    const std::size_t n =
        static_cast<std::size_t>(util::parse_uint(args.get("kernels", "46")));
    const std::uint64_t seed = util::parse_uint(args.get("seed", "1"));
    if (args.has("family")) {
      return scenario::generate(args.get("family", ""), n, seed, pool);
    }
    const int type = static_cast<int>(util::parse_int(args.get("type", "1")));
    if (type != 1 && type != 2)
      throw std::invalid_argument("--type must be 1 or 2");
    const auto dfg = type == 1 ? dag::DfgType::Type1 : dag::DfgType::Type2;
    return dag::generate(dfg, n, seed, pool);
  }();
  if (args.has("arrivals")) {
    // --arrivals <mean-gap-ms>: stream the entry kernels in with Poisson
    // inter-arrival gaps instead of submitting everything at time zero.
    dag::apply_poisson_arrivals(graph,
                                util::parse_double(args.get("arrivals", "")),
                                util::parse_uint(args.get("seed", "1")));
  }
  return graph;
}

/// --trace-out writer knobs shared by `run` and `stream`: an event cap and
/// a per-category decimation stride (metadata is always kept, so tracks
/// stay named even when spans are dropped).
obs::ChromeTraceWriter::Options trace_options_from_args(const Args& args) {
  obs::ChromeTraceWriter::Options opt;
  opt.max_events = static_cast<std::size_t>(
      util::parse_uint(args.get("trace-max-events", "1048576")));
  opt.every = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             util::parse_uint(args.get("trace-every", "1"))));
  return opt;
}

/// Serialises a profiling snapshot as `{"counters": {...}, "timers":
/// {...}}` — the object the stream JSON exporter places next to
/// "tm_solver".
std::string profile_to_json(const obs::ProfileSnapshot& p) {
  std::string out = "{\"counters\": {";
  for (std::size_t i = 0; i < p.counters.size(); ++i) {
    if (i) out += ", ";
    out += "\"" + util::json_escape(p.counters[i].name) +
           "\": " + std::to_string(p.counters[i].count);
  }
  out += "}, \"timers\": {";
  for (std::size_t i = 0; i < p.timers.size(); ++i) {
    if (i) out += ", ";
    const auto& t = p.timers[i];
    out += "\"" + util::json_escape(t.name) +
           "\": {\"count\": " + std::to_string(t.count) +
           ", \"total_ms\": " + util::format_double(t.total_ms, 3) +
           ", \"max_ms\": " + util::format_double(t.max_ms, 3) + "}";
  }
  out += "}}";
  return out;
}

/// Prints a profiling snapshot as one stdout table (counters first, then
/// timers with their accumulated wall-clock time).
void print_profile(const obs::ProfileSnapshot& p, const std::string& title) {
  std::cout << title << "\n";
  if (p.empty()) {
    std::cout << "  (no samples recorded)\n";
    return;
  }
  util::TablePrinter table({"hot-path metric", "count", "total ms", "max ms"});
  for (const auto& c : p.counters)
    table.add_row({c.name, std::to_string(c.count), "", ""});
  for (const auto& t : p.timers)
    table.add_row({t.name, std::to_string(t.count),
                   util::format_double(t.total_ms, 3),
                   util::format_double(t.max_ms, 3)});
  std::cout << table.to_string();
}

/// Writes a finished trace and reports where it went (and what the cap or
/// decimation dropped).
void finish_trace(const obs::ChromeTraceWriter& tracer,
                  const std::string& path) {
  tracer.write_file(path);
  std::cout << "trace written to " << path << " (" << tracer.event_count()
            << " events";
  if (tracer.dropped() > 0) std::cout << ", " << tracer.dropped() << " dropped";
  std::cout << ")\n";
}

int cmd_gen(const Args& args) {
  // Same table derivation as `run` — --lut CSV, the synthetic platform
  // flags (calibrated at --rate, default 4 GB/s), or the paper table — so
  // identical flags across `gen` and `run` always mean an identical
  // platform. The generators sample their kernels from that table's pool;
  // --lut-out saves it so the graph can be costed later
  // (`run --graph F --lut T.csv`).
  const lut::LookupTable table =
      table_from_args(args, {util::parse_double(args.get("rate", "4"))});
  const dag::Dag graph =
      graph_from_args(args, dag::KernelPool::from_lookup_table(table));
  // Only after generation succeeded: a failed `gen` must not leave a
  // platform file behind for scripts to pick up.
  if (args.has("lut-out")) {
    table.save_csv_file(args.get("lut-out", ""));
    // Logged (default sink: stderr): stdout may be carrying the serialised
    // graph, and --log-level off silences the notice for scripts.
    APT_LOG_INFO << "lookup table written to " << args.get("lut-out", "");
  }
  const std::string label =
      args.has("family")
          ? std::string(scenario::family(args.get("family", "")).name())
          : "type" + args.get("type", "1");
  if (args.has("dot"))
    std::ofstream(args.get("dot", "")) << dag::to_dot(graph, label);
  if (args.has("out")) {
    dag::save_text_file(graph, args.get("out", ""));
    std::cout << label << ": " << graph.node_count() << " kernels, "
              << graph.edge_count() << " edges, depth " << graph.depth()
              << " -> " << args.get("out", "") << "\n";
  } else {
    // Pipe-friendly: bare `gen` emits only the serialised graph.
    std::cout << dag::to_text(graph);
  }
  return 0;
}

int cmd_families() {
  util::TablePrinter table({"family", "min kernels", "description"});
  for (const scenario::ScenarioFamily* family : scenario::all_families()) {
    table.add_row({family->name(), std::to_string(family->min_kernels()),
                   family->description()});
  }
  std::cout << table.to_string();
  return 0;
}

int cmd_run(const Args& args) {
  const double rate = util::parse_double(args.get("rate", "4"));
  // Costing table: --lut CSV (e.g. one saved by `gen --lut-out`), the
  // synthetic platform flags, or the paper's measured table. The same table
  // feeds the generator's kernel pool so --family graphs are costable.
  const lut::LookupTable table = table_from_args(args, {rate});
  const dag::Dag graph =
      graph_from_args(args, dag::KernelPool::from_lookup_table(table));
  const std::string spec = args.get("policy", "apt:4");
  sim::SystemConfig config = sim::SystemConfig::paper_default(rate);
  config.topology = topology_from_args(args);
  const sim::System system(config);
  const auto policy = core::make_policy(spec);
  const sim::LutCostModel cost(table, system);

  // Observability taps (src/obs): both inert — attaching them cannot
  // change a simulated bit, so a traced run reproduces an untraced one.
  sim::EngineOptions engine_options;
  obs::Profile profile;
  std::optional<obs::ChromeTraceWriter> tracer;
  if (args.has("trace-out")) {
    tracer.emplace(system, trace_options_from_args(args));
    engine_options.sink = &*tracer;
  }
  if (args.has("profile")) engine_options.profile = &profile;

  const auto outcome =
      core::run_policy(*policy, graph, system, cost, engine_options);

  std::cout << "policy:    " << outcome.policy_name << "\n";
  std::cout << "topology:  " << system.topology().spec().label() << "\n";
  std::cout << "kernels:   " << graph.node_count() << "\n";
  std::cout << "makespan:  " << util::format_double(outcome.metrics.makespan, 3)
            << " ms\n";
  std::cout << "lambda:    total "
            << util::format_double(outcome.metrics.lambda.total_ms, 3)
            << " ms, avg "
            << util::format_double(outcome.metrics.lambda.avg_ms, 3)
            << " ms, stddev "
            << util::format_double(outcome.metrics.lambda.stddev_ms, 3)
            << " ms over " << outcome.metrics.lambda.occurrences
            << " occurrences\n";
  for (const auto& proc : outcome.metrics.per_proc) {
    std::cout << "  " << proc.name << ": compute "
              << util::format_double(proc.compute_ms, 3) << " ms, transfer "
              << util::format_double(proc.transfer_ms, 3) << " ms, idle "
              << util::format_double(proc.idle_ms, 3) << " ms ("
              << proc.kernel_count << " kernels)\n";
  }
  if (outcome.metrics.alternative_count > 0) {
    std::cout << "alternative assignments: "
              << outcome.metrics.alternative_count << "\n";
    for (const auto& [kernel, count] :
         outcome.metrics.alternative_by_kernel)
      std::cout << "  " << count << "-" << kernel << "\n";
  }
  std::cout << "energy:    "
            << util::format_double(outcome.metrics.total_energy_j, 1)
            << " J\n";
  if (!outcome.metrics.per_link.empty()) {
    std::cout << "comm:      busy "
              << util::format_double(outcome.metrics.comm_busy_ms, 3)
              << " ms, overlap with compute "
              << util::format_double(outcome.metrics.comm_compute_overlap_ms,
                                     3)
              << " ms\n";
    for (const auto& link : outcome.metrics.per_link) {
      std::cout << "  link " << link.name << ": busy "
                << util::format_double(link.busy_ms, 3) << " ms ("
                << util::format_double(link.utilization * 100.0, 1) << "%), "
                << util::format_double(link.bytes / 1e6, 2) << " MB over "
                << link.transfer_count << " transfers";
      if (link.avg_hops > 1.0)
        std::cout << " (avg route " << util::format_double(link.avg_hops, 2)
                  << " hops)";
      std::cout << "\n";
    }
  }
  if (args.has("trace")) {
    std::cout << "\n"
              << sim::format_trace(system,
                                   sim::build_trace(graph, system,
                                                    outcome.result));
  }
  if (args.has("gantt")) {
    std::cout << "\n" << sim::ascii_gantt(graph, system, outcome.result);
  }
  if (args.has("analyze")) {
    std::cout << "\n"
              << sim::format_analysis(sim::analyze_schedule(
                     graph, system, cost, outcome.result));
  }
  if (tracer) finish_trace(*tracer, args.get("trace-out", ""));
  if (args.has("profile"))
    print_profile(profile.snapshot(), "profile (hot-path counters/timers):");
  if (args.has("csv")) {
    util::CsvTable csv({"node", "kernel", "data_size", "proc", "ready_ms",
                        "assign_ms", "exec_start_ms", "finish_ms",
                        "alternative"});
    for (const auto& k : outcome.result.schedule) {
      csv.add_row({std::to_string(k.node), graph.node(k.node).kernel,
                   std::to_string(graph.node(k.node).data_size),
                   system.processor(k.proc).name,
                   util::format_double(k.ready_time, 6),
                   util::format_double(k.assign_time, 6),
                   util::format_double(k.exec_start, 6),
                   util::format_double(k.finish_time, 6),
                   k.alternative ? "1" : "0"});
    }
    util::write_csv_file(csv, args.get("csv", ""));
    std::cout << "schedule written to " << args.get("csv", "") << "\n";
  }
  return 0;
}

int cmd_compare(const Args& args) {
  const int type = static_cast<int>(util::parse_int(args.get("type", "1")));
  const auto dfg = type == 1 ? dag::DfgType::Type1 : dag::DfgType::Type2;
  const double alpha = util::parse_double(args.get("alpha", "4"));
  const double rate = util::parse_double(args.get("rate", "4"));

  const core::Grid grid =
      core::run_paper_grid(dfg, core::paper_policy_specs(alpha), rate);

  std::vector<std::string> header = {"Graph"};
  for (const auto& name : grid.policy_names) header.push_back(name);
  util::TablePrinter table(header);
  for (std::size_t g = 0; g < grid.experiment_count(); ++g) {
    std::vector<std::string> row = {std::to_string(g + 1)};
    for (std::size_t p = 0; p < grid.policy_count(); ++p)
      row.push_back(util::format_double(grid.cells[g][p].makespan_ms, 0));
    table.add_row(row);
  }
  table.add_separator();
  std::vector<std::string> avg = {"avg"};
  for (std::size_t p = 0; p < grid.policy_count(); ++p)
    avg.push_back(util::format_double(grid.avg_makespan_ms(p), 0));
  table.add_row(avg);
  std::cout << "Total computation time (ms), " << dag::to_string(dfg)
            << ", rate " << rate << " GB/s\n"
            << table.to_string();
  std::cout << "APT improvement vs best other dynamic policy: "
            << util::format_double(core::improvement_exec_pct(grid, 0), 2)
            << "% exec, "
            << util::format_double(core::improvement_lambda_pct(grid, 0), 2)
            << "% lambda\n";
  return 0;
}

using util::json_escape;

/// Visits every cell of the result cube in task order (topology outermost)
/// with its axis coordinates — the one loop both exporters feed from.
template <typename Fn>
void for_each_sweep_cell(const core::BatchResult& result, Fn&& fn) {
  for (std::size_t t = 0; t < result.topology_count; ++t)
    for (std::size_t rep = 0; rep < result.replications; ++rep)
      for (std::size_t r = 0; r < result.rate_count; ++r)
        for (std::size_t g = 0; g < result.graph_count; ++g)
          for (std::size_t p = 0; p < result.policy_count; ++p)
            fn(t, rep, r, g, p, result.at(t, rep, r, g, p));
}

/// Serialises a sweep result as one JSON object (hand-rolled: the cube is
/// flat and numeric, no library needed). `graph_labels` names each graph's
/// scenario coordinates (family/size) so cells are attributable without
/// knowing the plan's expansion order.
std::string sweep_to_json(const core::BatchResult& result,
                          const std::string& type_name,
                          const std::vector<std::string>& graph_labels) {
  std::string out = "{\n  \"workload\": \"" + json_escape(type_name) + "\",\n";
  out += "  \"topologies\": [";
  for (std::size_t t = 0; t < result.topology_count; ++t) {
    if (t) out += ", ";
    out += "\"" + json_escape(result.topology_labels[t]) + "\"";
  }
  out += "],\n  \"policies\": [";
  for (std::size_t p = 0; p < result.policy_count; ++p) {
    if (p) out += ", ";
    out += "{\"name\": \"" + json_escape(result.policy_names[p]) +
           "\", \"spec\": \"" + json_escape(result.policy_specs[p]) + "\"}";
  }
  out += "],\n  \"rates_gbps\": [";
  for (std::size_t r = 0; r < result.rate_count; ++r) {
    if (r) out += ", ";
    out += util::format_double(result.rates_gbps[r], 3);
  }
  out += "],\n  \"cells\": [\n";
  bool first = true;
  for_each_sweep_cell(result, [&](std::size_t t, std::size_t rep,
                                  std::size_t r, std::size_t g, std::size_t p,
                                  const core::Cell& cell) {
    if (!first) out += ",\n";
    first = false;
    out += "    {\"topology\": \"" + json_escape(result.topology_labels[t]) +
           "\", \"replication\": " + std::to_string(rep) +
           ", \"rate_gbps\": " + util::format_double(result.rates_gbps[r], 3) +
           ", \"graph\": " + std::to_string(g + 1) +  // 1-based, as CSV
           ", \"workload\": \"" + json_escape(graph_labels.at(g)) +
           "\", \"policy\": \"" + json_escape(result.policy_names[p]) +
           "\", \"makespan_ms\": " + util::format_double(cell.makespan_ms, 6) +
           ", \"lambda_total_ms\": " +
           util::format_double(cell.lambda_total_ms, 6) +
           ", \"alternatives\": " + std::to_string(cell.alternative_count) +
           "}";
  });
  out += "\n  ]\n}\n";
  return out;
}

int cmd_sweep(const Args& args) {
  // Workload axis: either the paper's ten graphs of --type (default), or —
  // with --family — a generated scenario cube of one or more families,
  // optionally on a synthetic platform (--ccr/--hetero/--lut-seed).
  const bool family_mode = args.has("family");
  auto dfg = dag::DfgType::Type1;  // labels the Grid slices; Type1 in
                                   // family mode where it is not meaningful
  if (!family_mode) {
    const int type = static_cast<int>(util::parse_int(args.get("type", "1")));
    if (type != 1 && type != 2)
      throw std::invalid_argument("--type must be 1 or 2");
    dfg = type == 1 ? dag::DfgType::Type1 : dag::DfgType::Type2;
  }

  // Columns: explicit policy specs plus one APT column per alpha. With
  // neither option the sweep reproduces the thesis's alpha grid. Specs
  // validate against the policy registry here, so a typo dies with a
  // did-you-mean before any graph is generated.
  std::vector<std::string> specs;
  if (args.has("policies"))
    specs = core::parse_policy_list(args.get("policies", ""));
  std::vector<double> alphas;
  if (args.has("alphas") || !args.has("policies")) {
    for (const auto& a : util::split(args.get("alphas", "1.5,2,4,8,16"), ','))
      alphas.push_back(util::parse_double(a));
    for (const double alpha : alphas)
      specs.push_back("apt:" + util::format_double(alpha, 3));
  }

  std::vector<double> rates;
  for (const auto& r : util::split(args.get("rates", "4,8"), ','))
    rates.push_back(util::parse_double(r));

  const std::uint64_t seed = util::parse_uint(args.get("seed", "0"));
  // --topology takes a comma list in sweep: the plan's outermost axis.
  const std::vector<net::TopologySpec> topologies = topologies_from_args(args);
  std::string workload_name;
  std::vector<std::string> graph_labels;  // per-graph, for the exporters
  core::ExperimentPlan plan;
  if (family_mode) {
    core::ScenarioSweepSpec spec;
    spec.topology = topologies.front();
    spec.topologies = topologies;
    spec.families.clear();
    for (const auto& f : util::split(args.get("family", ""), ','))
      if (!util::trim(f).empty()) spec.families.push_back(util::trim(f));
    spec.graphs_per_family =
        static_cast<std::size_t>(util::parse_uint(args.get("graphs", "10")));
    spec.kernel_counts.clear();
    for (const auto& k : util::split(args.get("kernels", "46"), ','))
      spec.kernel_counts.push_back(
          static_cast<std::size_t>(util::parse_uint(k)));
    spec.graph_seed = seed;
    if (wants_synthetic_platform(args))
      spec.synthetic = synthetic_spec_from_args(args, rates);
    plan = core::make_scenario_plan(spec, specs, rates);
    workload_name = "scenario[" + util::join(spec.families, "+") + "]";
    graph_labels = core::scenario_graph_labels(spec);
  } else {
    plan = core::ExperimentPlan::paper(dfg, specs, rates);
    plan.base_system.topology = topologies.front();
    plan.topologies = topologies;
    workload_name = dag::to_string(dfg);
    graph_labels.assign(plan.graphs.size(), workload_name);
  }
  plan.replications =
      static_cast<std::size_t>(util::parse_uint(args.get("reps", "1")));
  plan.base_seed = seed;

  const std::size_t jobs =
      static_cast<std::size_t>(util::parse_uint(args.get("jobs", "1")));
  const core::BatchRunner runner(jobs);
  const auto t0 = std::chrono::steady_clock::now();
  const core::BatchResult result = runner.run(plan);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();

  // One Grid per (topology, replication, rate) slice; the summary averages
  // over all replications and sums their wins, so stochastic sweeps
  // (--reps > 1) are fully represented, not just replication 0.
  const double reps = static_cast<double>(result.replications);
  util::TablePrinter table({"topology", "policy", "rate GB/s",
                            "avg makespan ms", "avg lambda ms", "wins"});
  for (std::size_t t = 0; t < result.topology_count; ++t) {
    std::vector<std::vector<core::Grid>> grids;  // [rep][rate]
    grids.reserve(result.replications);
    for (std::size_t rep = 0; rep < result.replications; ++rep) {
      grids.emplace_back();
      grids.back().reserve(result.rate_count);
      for (std::size_t r = 0; r < result.rate_count; ++r)
        grids.back().push_back(result.grid(dfg, r, rep, t));
    }
    for (std::size_t p = 0; p < result.policy_count; ++p) {
      for (std::size_t r = 0; r < result.rate_count; ++r) {
        double makespan = 0.0;
        double lambda = 0.0;
        std::size_t wins = 0;
        for (std::size_t rep = 0; rep < result.replications; ++rep) {
          const core::Grid& grid = grids[rep][r];
          makespan += grid.avg_makespan_ms(p);
          lambda += grid.avg_lambda_ms(p);
          wins += grid.wins(p);
        }
        table.add_row({result.topology_labels[t], result.policy_names[p],
                       util::format_double(result.rates_gbps[r], 0),
                       util::format_double(makespan / reps, 1),
                       util::format_double(lambda / reps, 1),
                       std::to_string(wins)});
      }
    }
  }
  std::cout << "sweep, " << workload_name << ", topology "
            << util::join(result.topology_labels, "+") << ", "
            << result.graph_count << " graphs x " << result.policy_count
            << " policies x " << result.rate_count << " rates x "
            << result.topology_count << " topologies x "
            << result.replications << " reps = " << result.cells.size()
            << " runs in " << util::format_double(elapsed_ms, 1) << " ms ("
            << runner.jobs() << " jobs)\n"
            << table.to_string();

  if (args.has("csv")) {
    util::CsvTable csv({"replication", "rate_gbps", "topology", "graph",
                        "workload", "policy", "spec", "makespan_ms",
                        "lambda_total_ms", "lambda_avg_ms",
                        "lambda_stddev_ms", "alternatives"});
    for_each_sweep_cell(result, [&](std::size_t t, std::size_t rep,
                                    std::size_t r, std::size_t g,
                                    std::size_t p, const core::Cell& cell) {
      csv.add_row({std::to_string(rep),
                   util::format_double(result.rates_gbps[r], 3),
                   result.topology_labels[t], std::to_string(g + 1),
                   graph_labels.at(g), result.policy_names[p],
                   result.policy_specs[p],
                   util::format_double(cell.makespan_ms, 6),
                   util::format_double(cell.lambda_total_ms, 6),
                   util::format_double(cell.lambda_avg_ms, 6),
                   util::format_double(cell.lambda_stddev_ms, 6),
                   std::to_string(cell.alternative_count)});
    });
    util::write_csv_file(csv, args.get("csv", ""));
    std::cout << "cells written to " << args.get("csv", "") << "\n";
  }
  if (args.has("json")) {
    std::ofstream out(args.get("json", ""), std::ios::binary);
    if (!out)
      throw std::runtime_error("sweep: cannot open '" +
                               args.get("json", "") + "'");
    out << sweep_to_json(result, workload_name, graph_labels);
    std::cout << "cells written to " << args.get("json", "") << "\n";
  }
  return 0;
}

/// Splits a comma-separated option into trimmed, non-empty tokens.
std::vector<std::string> csv_tokens(const Args& args, const std::string& key,
                                    const std::string& fallback) {
  std::vector<std::string> out;
  for (const auto& token : util::split(args.get(key, fallback), ','))
    if (!util::trim(token).empty()) out.push_back(util::trim(token));
  return out;
}

/// Reads an arrival-trace file: one absolute arrival instant (ms) per
/// line; blank lines and '#' comments are skipped. Validation (ordering,
/// sign) is the ArrivalSpec's job.
std::vector<sim::TimeMs> read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("stream: cannot open trace file '" + path + "'");
  std::vector<sim::TimeMs> out;
  std::string line;
  while (std::getline(in, line)) {
    const std::string token = util::trim(line);
    if (token.empty() || token[0] == '#') continue;
    out.push_back(util::parse_double(token));
  }
  if (out.empty())
    throw std::runtime_error("stream: trace file '" + path +
                             "' holds no arrival instants");
  return out;
}

/// One (topology × tail-probability × hedging-mode) slice of the stream
/// ablation: the whole grid rerun under those fabric/noise/hedging
/// settings. Topology is the outermost axis, so a comm-aware vs comm-blind
/// policy pair is compared across every routed fabric × arrival rate in a
/// single CSV/JSON.
struct StreamAblationRun {
  std::string topology_label;
  double tail_prob = 0.0;
  bool hedging = false;
  core::StreamBatchResult result;
};

/// The comm_aware ablation column of a policy spec ("true"/"false" from
/// the registry flag; unknown specs — impossible after parse_policy_list —
/// report "false").
const char* comm_aware_label(const std::string& spec) {
  const core::PolicyInfo* info = core::find_policy_info(spec);
  return info && info->comm_aware ? "true" : "false";
}

int cmd_stream(const Args& args) {
  core::StreamPlan plan;
  plan.families = csv_tokens(args, "family", "type1");
  plan.rates_per_ms.clear();
  for (const auto& r : csv_tokens(args, "rate", "0.01"))
    plan.rates_per_ms.push_back(util::parse_double(r));
  // Registry-validated: a typo fails here with a did-you-mean instead of
  // mid-run inside a worker.
  plan.policy_specs =
      core::parse_policy_list(args.get("policies", "apt:4,met,spn,ag"));
  plan.kernels =
      static_cast<std::size_t>(util::parse_uint(args.get("kernels", "46")));
  plan.arrival_kind =
      stream::parse_arrival_kind(args.get("arrival", "poisson"));
  if (plan.arrival_kind == stream::ArrivalKind::Trace) {
    if (!args.has("trace-file"))
      throw std::runtime_error(
          "stream: --arrival trace needs --trace-file FILE");
    plan.trace_arrivals = read_trace_file(args.get("trace-file", ""));
  }
  plan.max_apps =
      static_cast<std::size_t>(util::parse_uint(args.get("max-apps", "0")));
  plan.horizon_ms = util::parse_double(args.get("duration", "60000"));
  // Warmup default: the first tenth of the admission horizon, so
  // steady-state metrics are not biased by the initial empty-system ramp.
  plan.warmup_ms = args.has("warmup")
                       ? util::parse_double(args.get("warmup", ""))
                       : plan.horizon_ms * 0.1;
  plan.base_seed = util::parse_uint(args.get("seed", "0"));
  const double link_rate = util::parse_double(args.get("link-rate", "4"));
  plan.base_system = sim::SystemConfig::paper_default(link_rate);
  // --topology takes a comma list: each fabric reruns the whole grid as an
  // ablation slice (workload seeds depend only on the plan's base seed, so
  // every fabric faces the identical arrival sequence).
  const std::vector<net::TopologySpec> topologies = topologies_from_args(args);
  plan.base_system.topology = topologies.front();
  plan.table = table_from_args(args, {link_rate});
  std::vector<std::string> topology_labels;
  for (const net::TopologySpec& t : topologies)
    topology_labels.push_back(t.label());
  const std::string topology_label = util::join(topology_labels, "+");

  // Service-time noise + hedging ablation axes. All default to off, which
  // reproduces noise-free streams bit-for-bit.
  plan.noise.sigma = util::parse_double(args.get("noise-sigma", "0"));
  plan.noise.heavy_tail_multiplier =
      util::parse_double(args.get("tail-mult", "20"));
  plan.noise.seed = util::parse_uint(args.get("noise-seed", "0"));
  std::vector<double> tail_probs;
  for (const auto& p : csv_tokens(args, "tail-prob", "0"))
    tail_probs.push_back(util::parse_double(p));
  const std::string hedging_mode = args.get("hedging", "off");
  std::vector<bool> hedging_modes;
  if (hedging_mode == "off")
    hedging_modes = {false};
  else if (hedging_mode == "on")
    hedging_modes = {true};
  else if (hedging_mode == "both")
    hedging_modes = {false, true};
  else
    throw std::runtime_error("stream: --hedging must be on, off, or both");
  plan.hedging.quantile =
      util::parse_double(args.get("hedge-quantile", "0.95"));
  plan.hedging.threshold_factor =
      util::parse_double(args.get("hedge-factor", "1.5"));

  // Observability (src/obs): --profile attaches a per-cell profile (each
  // snapshot lands in its cell's metrics and the JSON export); --trace-out
  // captures the timeline of flat cell 0 — the grid's first family/rate/
  // policy cell — of the FIRST ablation slice, so the sink never sees
  // interleaved cells.
  plan.profile = args.has("profile");
  const sim::System trace_system(plan.base_system);
  std::optional<obs::ChromeTraceWriter> tracer;
  if (args.has("trace-out")) {
    tracer.emplace(trace_system, trace_options_from_args(args));
    plan.trace_sink = &*tracer;
    plan.trace_cell = 0;
  }

  const std::size_t jobs =
      static_cast<std::size_t>(util::parse_uint(args.get("jobs", "1")));
  const core::BatchRunner runner(jobs);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<StreamAblationRun> runs;
  for (const net::TopologySpec& topo : topologies) {
    plan.base_system.topology = topo;
    for (const double tail_prob : tail_probs) {
      for (const bool hedging : hedging_modes) {
        plan.noise.heavy_tail_prob = tail_prob;
        plan.hedging.enabled = hedging;
        runs.push_back(StreamAblationRun{
            topo.label(), tail_prob, hedging,
            core::run_stream_plan(plan, runner)});
        plan.trace_sink = nullptr;  // only the first slice is traced
      }
    }
  }
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();

  const core::StreamBatchResult& first = runs.front().result;
  std::cout << "stream, " << first.families.size() << " families x "
            << first.rates_per_ms.size() << " rates x "
            << first.policy_names.size() << " policies x " << runs.size()
            << " topology/noise/hedging slices = "
            << first.cells.size() * runs.size() << " cells in "
            << util::format_double(elapsed_ms, 1) << " ms (" << runner.jobs()
            << " jobs), arrivals " << stream::to_string(plan.arrival_kind)
            << ", topology " << topology_label << ", horizon "
            << util::format_double(plan.horizon_ms, 0) << " ms, warmup "
            << util::format_double(plan.warmup_ms, 0) << " ms, noise sigma "
            << util::format_double(plan.noise.sigma, 3) << "\n";
  util::TablePrinter table({"family", "rate/ms", "topology", "policy",
                            "tail", "hedge", "apps", "thrpt/s",
                            "flow avg ms", "flow p95 ms", "flow p99 ms",
                            "slowdown", "util %", "hedges w/l"});
  for (const StreamAblationRun& run : runs) {
    for (const core::StreamCellResult& cell : run.result.cells) {
      const sim::StreamMetrics& m = cell.metrics;
      const std::size_t lost = m.hedges_launched - m.hedges_replica_won;
      table.add_row({cell.family, util::format_double(cell.rate_per_ms, 6),
                     run.topology_label, cell.policy_name,
                     util::format_double(run.tail_prob, 3),
                     run.hedging ? "on" : "off",
                     std::to_string(m.apps_measured),
                     util::format_double(m.throughput_apps_per_s, 2),
                     util::format_double(m.flow_ms.avg, 1),
                     util::format_double(m.flow_ms.p95, 1),
                     util::format_double(m.flow_ms.p99, 1),
                     util::format_double(m.slowdown.avg, 2),
                     util::format_double(m.avg_utilization * 100.0, 1),
                     std::to_string(m.hedges_replica_won) + "/" +
                         std::to_string(lost)});
    }
  }
  std::cout << table.to_string();

  if (tracer) {
    std::cout << "traced cell: family " << first.families.front() << ", rate "
              << util::format_double(first.rates_per_ms.front(), 6)
              << "/ms, policy " << first.policy_names.front() << ", topology "
              << runs.front().topology_label << "\n";
    finish_trace(*tracer, args.get("trace-out", ""));
  }
  if (plan.profile) {
    // Aggregate the per-cell snapshots for the console (sums over all
    // cells and slices; timer max is the max across cells). The JSON
    // export below keeps them per cell.
    std::map<std::string, std::uint64_t> counters;
    struct TimerTotal {
      std::uint64_t count = 0;
      double total_ms = 0.0;
      double max_ms = 0.0;
    };
    std::map<std::string, TimerTotal> timers;
    for (const StreamAblationRun& run : runs) {
      for (const core::StreamCellResult& cell : run.result.cells) {
        for (const auto& c : cell.metrics.profile.counters)
          counters[c.name] += c.count;
        for (const auto& t : cell.metrics.profile.timers) {
          TimerTotal& tot = timers[t.name];
          tot.count += t.count;
          tot.total_ms += t.total_ms;
          tot.max_ms = std::max(tot.max_ms, t.max_ms);
        }
      }
    }
    obs::ProfileSnapshot aggregate;
    for (const auto& [name, count] : counters)
      aggregate.counters.push_back({name, count});
    for (const auto& [name, t] : timers)
      aggregate.timers.push_back({name, t.count, t.total_ms, t.max_ms});
    print_profile(aggregate, "profile (summed over all cells/slices):");
  }

  if (args.has("csv")) {
    util::CsvTable csv(
        {"family", "rate_per_ms", "topology", "policy", "spec", "comm_aware",
         "apps_arrived",
         "apps_completed", "apps_measured", "throughput_apps_per_s",
         "flow_avg_ms", "flow_p50_ms", "flow_p95_ms", "flow_p99_ms",
         "flow_max_ms",
         "slowdown_avg", "slowdown_p50", "slowdown_p95", "slowdown_p99",
         "slowdown_max",
         "avg_utilization", "queue_depth_avg", "queue_depth_max",
         "live_apps_avg", "live_apps_max", "warmup_ms", "end_ms",
         "noise_sigma", "tail_prob", "tail_mult", "hedging",
         "hedges_launched", "hedges_replica_won", "hedge_wasted_ms"});
    for (const StreamAblationRun& run : runs) {
      for (const core::StreamCellResult& cell : run.result.cells) {
        const sim::StreamMetrics& m = cell.metrics;
        csv.add_row({cell.family, util::format_double(cell.rate_per_ms, 6),
                     run.topology_label, cell.policy_name, cell.policy_spec,
                     comm_aware_label(cell.policy_spec),
                     std::to_string(m.apps_arrived),
                     std::to_string(m.apps_completed),
                     std::to_string(m.apps_measured),
                     util::format_double(m.throughput_apps_per_s, 6),
                     util::format_double(m.flow_ms.avg, 6),
                     util::format_double(m.flow_ms.p50, 6),
                     util::format_double(m.flow_ms.p95, 6),
                     util::format_double(m.flow_ms.p99, 6),
                     util::format_double(m.flow_ms.max, 6),
                     util::format_double(m.slowdown.avg, 6),
                     util::format_double(m.slowdown.p50, 6),
                     util::format_double(m.slowdown.p95, 6),
                     util::format_double(m.slowdown.p99, 6),
                     util::format_double(m.slowdown.max, 6),
                     util::format_double(m.avg_utilization, 6),
                     util::format_double(m.queue_depth_avg, 6),
                     std::to_string(m.queue_depth_max),
                     util::format_double(m.live_apps_avg, 6),
                     std::to_string(m.live_apps_max),
                     util::format_double(m.warmup_ms, 3),
                     util::format_double(m.end_ms, 3),
                     util::format_double(plan.noise.sigma, 6),
                     util::format_double(run.tail_prob, 6),
                     util::format_double(plan.noise.heavy_tail_multiplier, 6),
                     run.hedging ? "on" : "off",
                     std::to_string(m.hedges_launched),
                     std::to_string(m.hedges_replica_won),
                     util::format_double(m.hedge_wasted_ms, 6)});
      }
    }
    util::write_csv_file(csv, args.get("csv", ""));
    std::cout << "cells written to " << args.get("csv", "") << "\n";
  }
  if (args.has("json")) {
    std::ofstream out(args.get("json", ""), std::ios::binary);
    if (!out)
      throw std::runtime_error("stream: cannot open '" +
                               args.get("json", "") + "'");
    out << "{\n  \"workload\": \"stream\",\n  \"arrivals\": \""
        << stream::to_string(plan.arrival_kind) << "\",\n  \"topology\": \""
        << json_escape(topology_label) << "\",\n  \"noise_sigma\": "
        << util::format_double(plan.noise.sigma, 6) << ",\n  \"cells\": [\n";
    std::size_t emitted = 0;
    const std::size_t total = first.cells.size() * runs.size();
    for (const StreamAblationRun& run : runs) {
      for (const core::StreamCellResult& cell : run.result.cells) {
        const sim::StreamMetrics& m = cell.metrics;
        out << "    {\"family\": \"" << json_escape(cell.family)
            << "\", \"rate_per_ms\": "
            << util::format_double(cell.rate_per_ms, 6)
            << ", \"topology\": \"" << json_escape(run.topology_label)
            << "\", \"policy\": \""
            << json_escape(cell.policy_name) << "\", \"spec\": \""
            << json_escape(cell.policy_spec) << "\", \"comm_aware\": "
            << comm_aware_label(cell.policy_spec)
            << ", \"tail_prob\": " << util::format_double(run.tail_prob, 6)
            << ", \"hedging\": " << (run.hedging ? "true" : "false")
            << ", \"apps_measured\": " << m.apps_measured
            << ", \"throughput_apps_per_s\": "
            << util::format_double(m.throughput_apps_per_s, 6)
            << ", \"flow_avg_ms\": " << util::format_double(m.flow_ms.avg, 6)
            << ", \"flow_p95_ms\": " << util::format_double(m.flow_ms.p95, 6)
            << ", \"flow_p99_ms\": " << util::format_double(m.flow_ms.p99, 6)
            << ", \"slowdown_avg\": "
            << util::format_double(m.slowdown.avg, 6)
            << ", \"slowdown_p99\": "
            << util::format_double(m.slowdown.p99, 6)
            << ", \"avg_utilization\": "
            << util::format_double(m.avg_utilization, 6)
            << ", \"queue_depth_avg\": "
            << util::format_double(m.queue_depth_avg, 6)
            << ", \"queue_depth_max\": " << m.queue_depth_max
            << ", \"hedges_launched\": " << m.hedges_launched
            << ", \"hedges_replica_won\": " << m.hedges_replica_won
            << ", \"hedge_wasted_ms\": "
            << util::format_double(m.hedge_wasted_ms, 6)
            << ", \"tm_solver\": {\"full\": " << m.tm_solve_stats.full_solves
            << ", \"incremental\": " << m.tm_solve_stats.incremental_solves
            << ", \"fallback\": " << m.tm_solve_stats.fallback_solves
            << ", \"flows_resolved\": " << m.tm_solve_stats.flows_resolved
            << ", \"flows_active\": " << m.tm_solve_stats.flows_active
            << "}";
        if (!m.profile.empty())
          out << ", \"profile\": " << profile_to_json(m.profile);
        out << ", \"queue_depth_samples\": [";
        for (std::size_t s = 0; s < m.queue_depth_samples.size(); ++s) {
          if (s) out << ", ";
          out << "["
              << util::format_double(m.queue_depth_samples[s].first, 3)
              << ", " << m.queue_depth_samples[s].second << "]";
        }
        ++emitted;
        out << "]}" << (emitted < total ? ",\n" : "\n");
      }
    }
    out << "  ]\n}\n";
    std::cout << "cells written to " << args.get("json", "") << "\n";
  }
  return 0;
}

int cmd_lut(const Args& args) {
  const lut::LookupTable table = lut::paper_lookup_table();
  if (args.has("csv")) {
    table.save_csv_file(args.get("csv", ""));
    std::cout << "lookup table written to " << args.get("csv", "") << "\n";
    return 0;
  }
  util::TablePrinter printer({"Kernel", "Data Size", "CPU (ms)", "GPU (ms)",
                              "FPGA (ms)"});
  for (const auto& e : table.entries()) {
    printer.add_row({e.kernel, std::to_string(e.data_size),
                     util::format_double(e.time(lut::ProcType::CPU), 3),
                     util::format_double(e.time(lut::ProcType::GPU), 3),
                     util::format_double(e.time(lut::ProcType::FPGA), 3)});
  }
  std::cout << printer.to_string();
  return 0;
}

int cmd_report(const Args& args) {
  const std::string dir = args.get("out-dir", "report");
  const double alpha = util::parse_double(args.get("alpha", "4"));
  std::filesystem::create_directories(dir);
  std::cout << "Regenerating the reproduction bundle (alpha = " << alpha
            << ") into " << dir << "/ ...\n";
  for (const auto& name : core::write_report_bundle(dir, alpha))
    std::cout << "  " << name << "\n";
  return 0;
}

int cmd_policies() {
  // One row per registry entry: usage, dynamic/static, summary, aliases.
  std::size_t width = 0;
  for (const auto& info : core::policy_registry())
    width = std::max(width, info.usage.size());
  std::cout << "known policies (SPEC forms for --policy / --policies):\n";
  for (const auto& info : core::policy_registry()) {
    std::cout << "  " << info.usage
              << std::string(width - info.usage.size() + 2, ' ')
              << (info.dynamic ? "dynamic  " : "static   ") << info.summary;
    if (!info.aliases.empty())
      std::cout << " [aka " << util::join(info.aliases, ", ") << "]";
    std::cout << "\n";
  }
  return 0;
}

// Build info injected by CMake (git describe + CMAKE_BUILD_TYPE); the
// fallbacks keep non-CMake builds (e.g. a bare compiler invocation)
// working.
#ifndef APTSIM_GIT_DESCRIBE
#define APTSIM_GIT_DESCRIBE "unknown"
#endif
#ifndef APTSIM_BUILD_TYPE
#define APTSIM_BUILD_TYPE "unknown"
#endif

int cmd_version() {
  std::cout << "aptsim " << APTSIM_GIT_DESCRIBE << " (" << APTSIM_BUILD_TYPE
            << " build)\n";
  return 0;
}

void usage() {
  std::cout <<
      "aptsim — heterogeneous-scheduling simulator (APT reproduction)\n"
      "\n"
      "usage:\n"
      "  aptsim gen [--family NAME | --type 1|2] --kernels N --seed S\n"
      "             [--out F] [--dot F] [--arrivals MEAN_MS]\n"
      "             [--lut F.csv | --ccr X --hetero H --lut-seed S]\n"
      "             [--rate GBPS] [--lut-out F]   (alias: generate)\n"
      "  aptsim run --policy SPEC [--graph F | --family NAME | --type T]\n"
      "             [--kernels N] [--seed S] [--rate GBPS]\n"
      "             [--lut F.csv | --ccr X --hetero H --lut-seed S]\n"
      "             [--topology ideal|bus|crossbar|hier[:S]|\n"
      "                  ring[:N]|mesh:RxC|fattree[:K]]\n"
      "             [--bandwidth GBPS] [--latency MS]\n"
      "             [--arrivals MEAN_MS] [--trace] [--gantt] [--analyze]\n"
      "             [--csv F] [--trace-out F.json] [--trace-max-events N]\n"
      "             [--trace-every K] [--profile]\n"
      "  aptsim compare [--type T] [--alpha A] [--rate GBPS]\n"
      "  aptsim sweep [--type T | --family NAME,... [--graphs G]\n"
      "               [--kernels N,...] [--ccr X] [--hetero H]\n"
      "               [--lut-seed S]] [--policies SPEC,...]\n"
      "               [--alphas 1.5,2,4] [--rates 4,8] [--jobs N] [--reps R]\n"
      "               [--topology KIND,...  (ideal|bus|crossbar|hier[:S]|\n"
      "                  ring[:N]|mesh:RxC|fattree[:K]; a comma list sweeps\n"
      "                  the topology axis)]\n"
      "               [--bandwidth GBPS] [--latency MS]\n"
      "               [--seed S] [--csv F] [--json F]\n"
      "  aptsim stream [--family NAME,...] [--rate L,... (apps/ms)]\n"
      "               [--policies SPEC,...] [--kernels N]\n"
      "               [--arrival poisson|deterministic|trace\n"
      "                  [--trace-file F]] [--duration MS]\n"
      "               [--warmup MS] [--max-apps N] [--seed S]\n"
      "               [--link-rate GBPS]\n"
      "               [--noise-sigma S] [--tail-prob P,...] [--tail-mult M]\n"
      "               [--noise-seed S] [--hedging on|off|both]\n"
      "               [--hedge-quantile Q] [--hedge-factor F]\n"
      "               [--lut F.csv | --ccr X --hetero H --lut-seed S]\n"
      "               [--topology KIND,...  (comma list reruns the grid per\n"
      "                  fabric — the comm-aware ablation axis)]\n"
      "               [--bandwidth GBPS] [--latency MS]\n"
      "               [--jobs N] [--csv F] [--json F]\n"
      "               [--trace-out F.json] [--trace-max-events N]\n"
      "               [--trace-every K] [--profile]\n"
      "  aptsim families\n"
      "  aptsim lut [--csv F]\n"
      "  aptsim report [--out-dir D] [--alpha A]\n"
      "  aptsim policies\n"
      "  aptsim version | --version\n"
      "\n"
      "global: --log-level debug|info|warn|error|off   (default info)\n"
      "\n"
      "--trace-out writes a Chrome-trace/Perfetto-loadable JSON timeline\n"
      "(load it at https://ui.perfetto.dev): one track per processor, one\n"
      "per link, plus arrival/decision/hedge/retirement instants. --profile\n"
      "prints hot-path counters/timers (and lands them in stream --json).\n"
      "Both are inert: the simulated timeline is bit-identical on or off.\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    // The CLI defaults to info (the library default is warn) so one-shot
    // notices stay visible; --log-level off silences them for scripts.
    util::Logger::instance().set_level(
        util::parse_log_level(args.get("log-level", "info")));
    // "generate" is the legacy spelling of "gen"; both take the same flags.
    if (args.command == "gen" || args.command == "generate")
      return cmd_gen(args);
    if (args.command == "families") return cmd_families();
    if (args.command == "run") return cmd_run(args);
    if (args.command == "compare") return cmd_compare(args);
    if (args.command == "sweep") return cmd_sweep(args);
    if (args.command == "stream") return cmd_stream(args);
    if (args.command == "lut") return cmd_lut(args);
    if (args.command == "report") return cmd_report(args);
    if (args.command == "policies") return cmd_policies();
    if (args.command == "version" || args.command == "--version")
      return cmd_version();
    usage();
    return args.command.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "aptsim: error: " << e.what() << "\n";
    return 1;
  }
}
