// Convenience layer tying the pieces together: one call to simulate a
// policy over a DAG on a system driven by a lookup table, returning the
// schedule and all aggregate metrics.
#pragma once

#include <memory>
#include <string>

#include "dag/graph.hpp"
#include "lut/lookup_table.hpp"
#include "sim/cost_model.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "sim/policy.hpp"
#include "sim/schedule.hpp"
#include "sim/system.hpp"

namespace apt::core {

/// Result of one run: the raw schedule plus computed aggregates.
struct RunOutcome {
  std::string policy_name;
  sim::SimResult result;
  sim::SimMetrics metrics;
};

/// Runs `policy` over `dag` with an explicit cost model.
RunOutcome run_policy(sim::Policy& policy, const dag::Dag& dag,
                      const sim::System& system, const sim::CostModel& cost);

/// Runs with explicit engine options (noise, hedging, observability taps).
RunOutcome run_policy(sim::Policy& policy, const dag::Dag& dag,
                      const sim::System& system, const sim::CostModel& cost,
                      const sim::EngineOptions& options);

/// Runs with the paper's cost model (lookup table + system interconnect).
RunOutcome run_policy(sim::Policy& policy, const dag::Dag& dag,
                      const sim::System& system,
                      const lut::LookupTable& table);

/// One-liner for scripts: builds the paper's 1×CPU+1×GPU+1×FPGA system at
/// `rate_gbps` with the paper lookup table and runs the given policy spec.
RunOutcome run_paper_system(const std::string& policy_spec,
                            const dag::Dag& dag, double rate_gbps = 4.0);

}  // namespace apt::core
