// Report exports: turn experiment grids and sweeps into CSV (for plotting)
// and Markdown (for docs) — the machinery behind `aptsim report`, which
// regenerates every table of EXPERIMENTS.md as files.
#pragma once

#include <string>
#include <vector>

#include "core/experiments.hpp"

namespace apt::core {

/// Which quantity of a Grid to export.
enum class GridValue { Makespan, LambdaTotal, AlternativeCount };

const char* to_string(GridValue value) noexcept;

/// CSV with one row per experiment and one column per policy, plus a
/// trailing "avg" row. Columns: experiment,<policy names...>.
std::string grid_to_csv(const Grid& grid, GridValue value);

/// GitHub-flavoured Markdown table of the same layout.
std::string grid_to_markdown(const Grid& grid, GridValue value);

/// CSV of an α sweep: alpha,rate_gbps,avg_makespan_ms,avg_lambda_ms.
std::string sweep_to_csv(const std::vector<AlphaSweepPoint>& points);

/// Writes the full reproduction bundle into `directory` (created by the
/// caller): per-type grid CSVs for makespan/λ at the given α plus the α
/// sweep CSVs. Returns the written file names (relative to `directory`).
std::vector<std::string> write_report_bundle(const std::string& directory,
                                             double alpha = 4.0);

}  // namespace apt::core
