// APT-Ranked: our hybrid extension combining HEFT's task prioritisation
// with APT's dynamic processor selection (not in the thesis; evaluated in
// bench_ablation_apt and EXPERIMENTS.md).
//
// Plain APT serves the ready set in FIFO (arrival) order, so a kernel with
// a long dependent chain can sit behind trivial kernels when processors
// are contested. APT-Ranked computes HEFT upward ranks once up front
// (making it semi-static: it needs the whole DAG, but keeps APT's cheap
// per-event decisions) and offers contested processors to the
// highest-rank ready kernel first. Threshold semantics are unchanged.
#pragma once

#include <vector>

#include "core/apt.hpp"

namespace apt::core {

class AptRanked final : public sim::Policy {
 public:
  explicit AptRanked(double alpha = 4.0);

  std::string name() const override;

  /// Dynamic per-event decisions, but prepare() consumes the full DAG —
  /// report as non-dynamic for the Eq. 13/14 comparisons (it enjoys the
  /// same whole-graph knowledge the statics do), while still paying
  /// transfers at assignment like every other on-line policy.
  bool is_dynamic() const override { return false; }
  sim::TransferSemantics transfer_semantics() const override {
    return sim::TransferSemantics::AtAssignment;
  }

  void prepare(const dag::Dag& dag, const sim::System& system,
               const sim::CostModel& cost) override;
  void on_event(sim::SchedulerContext& ctx) override;

  double alpha() const noexcept { return alpha_; }
  const std::vector<double>& ranks() const noexcept { return rank_; }

 private:
  double alpha_;
  std::vector<double> rank_;  ///< HEFT upward rank per node
};

}  // namespace apt::core
