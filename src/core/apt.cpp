#include "core/apt.hpp"

#include <limits>
#include <optional>
#include <stdexcept>

#include "policies/selection.hpp"
#include "util/string_utils.hpp"

namespace apt::core {

Apt::Apt(AptOptions options) : options_(options) {
  if (!(options_.alpha >= 1.0))
    throw std::invalid_argument("Apt: alpha must be >= 1 (Eq. 8)");
  if (options_.rank_quantile < 0.0 || options_.rank_quantile >= 1.0)
    throw std::invalid_argument("Apt: rank_quantile must be in [0, 1)");
}

std::string Apt::name() const {
  const char* head = options_.rank_quantile > 0.0 ? "APT-Q"
                     : options_.comm_aware        ? "APT-C"
                                                  : "APT";
  std::string n = std::string(head) + "(alpha=" +
                  util::format_double(options_.alpha, 2) + ")";
  if (!options_.transfer_aware) n += "[no-transfer]";
  if (options_.consider_remaining_time) n += "[remaining]";
  return n;
}

void Apt::prepare(const dag::Dag&, const sim::System&,
                  const sim::CostModel&) {
  quantile_mult_.reset();
}

void Apt::on_event(sim::SchedulerContext& ctx) {
  // Saturation fast path: both branches below act only through an idle
  // processor, and assignments only ever consume idle processors — so with
  // the idle set empty the whole pass is a no-op, and once it empties
  // mid-pass the remaining iterations are too. At deep backlog this turns
  // an O(ready) scan per event into O(assignments).
  if (ctx.idle_processors().empty()) return;
  // Snapshot: assign() mutates the ready list; one pass suffices because
  // assignments never free a processor.
  const std::vector<dag::NodeId> ready = ctx.ready();
  for (const dag::NodeId node : ready) {
    if (ctx.idle_processors().empty()) break;
    // Line 5-8 of Algorithm 1: the best processor, taken when available.
    if (const auto pmin = policies::idle_optimal_proc(ctx, node)) {
      ctx.assign(node, *pmin);
      continue;
    }

    // Line 10-14: the alternative processor within the threshold. APT-Q
    // scales BOTH sides by m_q: a uniform multiplier cancels in a pure
    // argmin, so the quantile only bites through the mixed deterministic /
    // noisy sum — exec and queueing widen with the tail, the unloaded
    // stall does not.
    if (!quantile_mult_) {
      quantile_mult_ = options_.rank_quantile > 0.0
                           ? sim::noise_quantile_multiplier(
                                 ctx.noise(), options_.rank_quantile)
                           : 1.0;
    }
    const double mq = *quantile_mult_;
    const sim::TimeMs x = policies::min_exec_time_ms(ctx, node);
    const sim::TimeMs threshold = options_.alpha * x * mq;

    std::optional<sim::ProcId> alt;
    sim::TimeMs alt_cost = std::numeric_limits<sim::TimeMs>::infinity();
    for (const sim::ProcId proc : ctx.idle_processors()) {
      sim::TimeMs cost = ctx.exec_time_ms(node, proc) * mq;
      if (options_.rank_quantile > 0.0) {
        cost += ctx.transfer_estimate(node, proc)
                    .quantile_ms(options_.rank_quantile);
      } else if (options_.comm_aware) {
        cost += ctx.transfer_estimate(node, proc).total_ms();
      } else if (options_.transfer_aware) {
        // The comm-blind reading: bit-identical to the legacy scalar.
        cost += ctx.transfer_estimate(node, proc).stall_ms;
      }
      if (cost <= threshold && cost < alt_cost) {
        alt = proc;
        alt_cost = cost;
      }
    }
    if (!alt) continue;  // within-threshold alternative absent: wait

    if (options_.consider_remaining_time) {
      // Future-work refinement: waiting costs (remaining time on p_min) + x;
      // prefer waiting when it beats the alternative.
      const sim::ProcId pmin = policies::min_exec_proc(ctx, node);
      const sim::TimeMs wait_cost = (ctx.busy_until(pmin) - ctx.now()) + x;
      if (wait_cost <= alt_cost) continue;
    }
    ctx.assign(node, *alt, /*alternative=*/true);
  }
}

}  // namespace apt::core
