// Open-system sweep orchestration: a declarative (family × arrival-rate ×
// policy) grid of independent StreamEngine runs, fanned over BatchRunner's
// workers.
//
// Every cell is one complete open-system simulation — its own arrival
// sequence, application instances, policy instance, and metrics — whose
// inputs derive only from the plan and the cell's flat index (seed =
// util::stream_seed(base_seed, index)). Cells write pre-allocated result
// slots, so the grid is bit-for-bit identical for any worker count, the
// same contract ExperimentPlan enjoys.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/batch.hpp"
#include "lut/lookup_table.hpp"
#include "sim/metrics.hpp"
#include "sim/noise.hpp"
#include "sim/system.hpp"
#include "stream/arrival.hpp"

namespace apt::obs {
class TraceSink;
}  // namespace apt::obs

namespace apt::core {

/// Axes of an open-system sweep.
struct StreamPlan {
  /// Registered scenario-family names; each cell draws its application
  /// instances from one family.
  std::vector<std::string> families = {"type1"};

  /// Arrival intensities λ in applications per millisecond (mean
  /// inter-arrival gap = 1/λ ms).
  std::vector<double> rates_per_ms = {0.01};

  /// Policy specs (core::make_policy). Streaming requires dynamic
  /// policies; validate() rejects static ones.
  std::vector<std::string> policy_specs = {"apt:4"};

  /// Kernels per application instance (raised to the family minimum).
  std::size_t kernels = 46;

  stream::ArrivalKind arrival_kind = stream::ArrivalKind::Poisson;

  /// Trace arrivals (arrival_kind == Trace only): absolute instants shared
  /// by every cell — the rate axis degenerates to a label. Must be
  /// non-empty, non-negative, and non-decreasing for a trace plan.
  std::vector<sim::TimeMs> trace_arrivals;

  /// Admission bounds and warmup truncation, as in stream::StreamOptions.
  std::size_t max_apps = 0;
  sim::TimeMs horizon_ms = 60000.0;
  sim::TimeMs warmup_ms = 0.0;

  std::uint64_t base_seed = 0;

  /// Service-time noise applied uniformly to every cell. Deliberately a
  /// plan-level setting rather than a grid axis: axes shift flat cell
  /// indices and therefore per-cell seeds, so making noise an axis would
  /// silently change the workloads of existing sweeps. The effective
  /// per-cell noise seed mixes noise.seed with the cell's workload seed
  /// (see run_stream_plan), so every policy column of a row sees the
  /// identical draws. Disabled by default — noise-off plans reproduce
  /// pre-noise results bit-for-bit.
  sim::NoiseSpec noise;

  /// Straggler hedging applied uniformly to every cell (plan-level for the
  /// same seed-stability reason as `noise`). Requires an uncontended
  /// topology.
  sim::HedgeSpec hedging;

  /// Platform template and cost table (empty table = the paper's).
  sim::SystemConfig base_system = sim::SystemConfig::paper_default();
  lut::LookupTable table;

  /// Observability (src/obs). Plan-level settings, NOT grid axes — axes
  /// shift flat cell indices and therefore per-cell seeds, so they would
  /// silently change the workloads of existing sweeps. Both are provably
  /// inert (see stream::StreamOptions): enabling them cannot change a
  /// simulated bit or a metric other than StreamMetrics::profile.
  ///
  /// `profile` attaches a per-cell obs::Profile whose snapshot lands in
  /// that cell's metrics. `trace_sink` (when non-null; must outlive
  /// run_stream_plan) receives the timeline of exactly ONE cell —
  /// `trace_cell` in flat order — so a multi-worker sweep never interleaves
  /// writes from concurrent cells into one sink.
  bool profile = false;
  obs::TraceSink* trace_sink = nullptr;
  std::size_t trace_cell = 0;

  std::size_t cell_count() const noexcept {
    return families.size() * rates_per_ms.size() * policy_specs.size();
  }

  /// Throws std::invalid_argument on empty axes, non-positive rates (for
  /// the synthetic arrival kinds; a trace plan instead needs a valid
  /// trace_arrivals sequence), an unbounded run, unknown families,
  /// malformed or static policy specs, or malformed noise/hedging specs;
  /// returns the resolved policy display names.
  std::vector<std::string> validate() const;
};

/// Coordinates of one cell. Row-major over (family, rate, policy), policy
/// fastest — so column p's first cell has flat index p and seeded policy
/// specs resolve in validate() exactly as they will in the run.
///
/// Two seeds per cell: the workload seed depends only on (family, rate), so
/// every policy column of a row faces the *identical* arrival sequence and
/// application instances (the streaming analogue of ExperimentPlan sharing
/// its graphs across policy columns); the policy seed is per-cell and feeds
/// "{seed}" placeholders in stochastic policy specs.
struct StreamCellCoords {
  std::size_t family = 0;
  std::size_t rate = 0;
  std::size_t policy = 0;
  std::size_t index = 0;
  std::uint64_t seed = 0;           ///< util::stream_seed(base_seed, index)
  std::uint64_t workload_seed = 0;  ///< shared by the row's policy columns
};

StreamCellCoords stream_cell_coords(const StreamPlan& plan,
                                    std::size_t flat_index);

/// One finished cell: its coordinates by value (self-describing rows for
/// exporters) plus the aggregated open-system metrics.
struct StreamCellResult {
  std::string family;
  double rate_per_ms = 0.0;
  std::string policy_name;
  std::string policy_spec;
  sim::StreamMetrics metrics;
};

/// Dense result grid in plan cell order.
struct StreamBatchResult {
  std::vector<std::string> families;
  std::vector<double> rates_per_ms;
  std::vector<std::string> policy_names;
  std::vector<std::string> policy_specs;
  std::vector<StreamCellResult> cells;

  const StreamCellResult& at(std::size_t family, std::size_t rate,
                             std::size_t policy) const;
};

/// Executes every cell of the plan over the runner's workers. Results are
/// bit-identical for any job count.
StreamBatchResult run_stream_plan(const StreamPlan& plan,
                                  const BatchRunner& runner);

}  // namespace apt::core
