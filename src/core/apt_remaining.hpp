// APT-R: the thesis's announced future-work extension packaged as its own
// policy ("In the future, we will consider the remaining execution time in
// the optimal processor before deciding whether to assign to an alternative
// processor", Chapter 5).
//
// Identical to APT except that, when p_min is busy and a within-threshold
// alternative exists, the kernel is sent to the alternative only if that
// beats the estimated cost of waiting: (remaining time on p_min) + x.
#pragma once

#include "core/apt.hpp"

namespace apt::core {

class AptRemaining final : public Apt {
 public:
  explicit AptRemaining(double alpha = 4.0)
      : Apt(AptOptions{alpha, /*transfer_aware=*/true,
                       /*consider_remaining_time=*/true}) {}

  std::string name() const override {
    return "APT-R(alpha=" + util_alpha_string() + ")";
  }

 private:
  std::string util_alpha_string() const;
};

}  // namespace apt::core
