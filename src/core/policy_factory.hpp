// Construction of any policy by name — the front door for the CLI, benches,
// and downstream users.
//
// Every constructible policy lives in one registry row (policy_registry()):
// canonical head, accepted aliases, usage string, one-line summary, and the
// dynamic/static classification. make_policy resolves a spec against that
// table — there is no separate if-chain to drift out of sync with the
// `aptsim policies` listing or the --policies parser — and rejects unknown
// heads with a did-you-mean suggestion (closest registered head by edit
// distance).
//
// Spec grammar (case-insensitive, whitespace-trimmed): "head" or
// "head:arg", e.g.
//   "apt"            APT with default alpha 4
//   "apt:2.5"        APT with alpha 2.5
//   "apt-c:2.5"      backlog-aware APT-C (transfer cost includes predicted
//                    link queueing from the live fabric state)
//   "apt-q"          tail-aware APT-Q (ranks by the p95 cost quantile under
//                    the run's noise spec; == APT-C when noise is off)
//   "ag" / "ag:recent" / "ag-net"   Adaptive Greedy (comm-blind / Eq. (2)
//                    estimator / fabric-backlog-aware)
//   "met" "spn" "ss" "olb" "minmin" "maxmin" "sufferage" "heft" "peft"
//   "random" / "random:1234" (seed)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/policy.hpp"

namespace apt::core {

/// One registry row: everything the CLI and the tests need to know about a
/// constructible policy without building it.
struct PolicyInfo {
  std::string head;                  ///< canonical spec head, e.g. "apt-c"
  std::vector<std::string> aliases;  ///< alternate heads, e.g. {"aptc"}
  std::string usage;                 ///< display form, e.g. "apt-c[:alpha]"
  std::string summary;               ///< one-line description
  bool dynamic = true;               ///< Policy::is_dynamic of the product
  /// True when the policy reads the live fabric backlog
  /// (TransferEstimate::link_queueing_ms) — the ablation exporters group
  /// comm-aware vs comm-blind columns by this flag.
  bool comm_aware = false;
};

/// The full registry, in display order. Stable within a process.
const std::vector<PolicyInfo>& policy_registry();

/// The registry row a spec would resolve against (head or alias, the
/// optional ":arg" ignored), or nullptr for unknown heads — the cheap
/// metadata lookup behind the ablation exporters, which must not construct
/// a policy per CSV row.
const PolicyInfo* find_policy_info(const std::string& spec);

/// Creates the policy described by `spec`; throws std::invalid_argument on
/// unknown heads (with a did-you-mean suggestion when a registered head is
/// within edit distance 2) or malformed parameters.
std::unique_ptr<sim::Policy> make_policy(const std::string& spec);

/// All specs understood by make_policy (for --help and tests): every
/// canonical head, parameterised forms as "head:<param>", plus concrete
/// advertised variants such as "ag:recent". Derived from the registry.
std::vector<std::string> known_policy_specs();

/// Splits a comma-separated --policies list, trims each entry, drops
/// empties, and validates every spec by constructing it once — so a typo
/// fails at parse time with make_policy's did-you-mean message instead of
/// deep inside a sweep. Returns the validated specs in input order.
std::vector<std::string> parse_policy_list(const std::string& csv);

/// The thesis's seven-policy comparison set (APT at the given alpha first,
/// then MET, SPN, SS, AG, HEFT, PEFT).
std::vector<std::unique_ptr<sim::Policy>> paper_policy_set(double apt_alpha);

}  // namespace apt::core
