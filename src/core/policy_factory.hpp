// Construction of any policy by name — the front door for the CLI, benches,
// and downstream users.
//
// Specs (case-insensitive):
//   "apt"            APT with default alpha 4
//   "apt:2.5"        APT with alpha 2.5
//   "apt-r" / "apt-r:8"   APT with the remaining-time extension
//   "met" "spn" "ss" "olb"
//   "ag"             sum-of-queued estimator; "ag:recent" for Eq. (2)
//   "minmin" "maxmin" "sufferage"   (Braun et al. batch-mode heuristics)
//   "heft" "peft"
//   "random" / "random:1234" (seed)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/policy.hpp"

namespace apt::core {

/// Creates the policy described by `spec`; throws std::invalid_argument on
/// unknown names or malformed parameters.
std::unique_ptr<sim::Policy> make_policy(const std::string& spec);

/// All specs understood by make_policy (for --help and tests).
std::vector<std::string> known_policy_specs();

/// The thesis's seven-policy comparison set (APT at the given alpha first,
/// then MET, SPN, SS, AG, HEFT, PEFT).
std::vector<std::unique_ptr<sim::Policy>> paper_policy_set(double apt_alpha);

}  // namespace apt::core
