#include "core/experiments.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/batch.hpp"
#include "core/policy_factory.hpp"
#include "core/runner.hpp"
#include "lut/paper_data.hpp"
#include "util/string_utils.hpp"

namespace apt::core {

double Grid::avg_makespan_ms(std::size_t policy) const {
  double sum = 0.0;
  for (const auto& row : cells) sum += row.at(policy).makespan_ms;
  return cells.empty() ? 0.0 : sum / static_cast<double>(cells.size());
}

double Grid::avg_lambda_ms(std::size_t policy) const {
  double sum = 0.0;
  for (const auto& row : cells) sum += row.at(policy).lambda_total_ms;
  return cells.empty() ? 0.0 : sum / static_cast<double>(cells.size());
}

std::size_t Grid::wins(std::size_t policy) const {
  std::size_t wins = 0;
  for (const auto& row : cells) {
    double best = std::numeric_limits<double>::infinity();
    for (const Cell& cell : row) best = std::min(best, cell.makespan_ms);
    // Shared-win semantics: every column at the row minimum counts the
    // experiment, so a tie between k policies credits each of the k.
    if (row.at(policy).makespan_ms == best) ++wins;
  }
  return wins;
}

std::vector<std::string> paper_policy_specs(double apt_alpha) {
  return {"apt:" + util::format_double(apt_alpha, 3),
          "met",
          "spn",
          "ss",
          "ag",
          "heft",
          "peft"};
}

Cell cell_from_outcome(const RunOutcome& outcome) {
  Cell cell;
  cell.makespan_ms = outcome.metrics.makespan;
  cell.lambda_total_ms = outcome.metrics.lambda.total_ms;
  cell.lambda_avg_ms = outcome.metrics.lambda.avg_ms;
  cell.lambda_stddev_ms = outcome.metrics.lambda.stddev_ms;
  cell.alternative_count = outcome.metrics.alternative_count;
  cell.alternative_by_kernel = outcome.metrics.alternative_by_kernel;
  return cell;
}

Grid run_paper_grid(dag::DfgType type,
                    const std::vector<std::string>& policy_specs,
                    double rate_gbps, std::size_t jobs) {
  const BatchRunner runner(jobs);
  return runner.run(ExperimentPlan::paper(type, policy_specs, {rate_gbps}))
      .grid(type);
}

std::vector<Cell> run_policy_over(const std::string& policy_spec,
                                  const std::vector<dag::Dag>& graphs,
                                  double rate_gbps) {
  const sim::System system(sim::SystemConfig::paper_default(rate_gbps));
  const lut::LookupTable table = lut::paper_lookup_table();
  std::vector<Cell> cells;
  cells.reserve(graphs.size());
  for (const dag::Dag& graph : graphs) {
    const auto policy = make_policy(policy_spec);
    cells.push_back(
        cell_from_outcome(run_policy(*policy, graph, system, table)));
  }
  return cells;
}

bool is_dynamic_spec(const std::string& spec) {
  return make_policy(spec)->is_dynamic();
}

namespace {

/// The paper's "second-best policy": the dynamic column (other than
/// `target`) with the best average makespan. Both Eq. 13 and Eq. 14
/// compare against this same competitor.
std::size_t second_best_dynamic(const Grid& grid, std::size_t target) {
  std::size_t best = grid.policy_count();
  double best_avg = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < grid.policy_count(); ++c) {
    if (c == target || !is_dynamic_spec(grid.policy_specs.at(c))) continue;
    const double avg = grid.avg_makespan_ms(c);
    if (avg < best_avg) {
      best_avg = avg;
      best = c;
    }
  }
  if (best == grid.policy_count())
    throw std::logic_error("improvement: no dynamic competitor in grid");
  return best;
}

}  // namespace

double improvement_exec_pct(const Grid& grid, std::size_t target) {
  const double competitor =
      grid.avg_makespan_ms(second_best_dynamic(grid, target));
  return (competitor - grid.avg_makespan_ms(target)) / competitor * 100.0;
}

double improvement_lambda_pct(const Grid& grid, std::size_t target) {
  const double competitor =
      grid.avg_lambda_ms(second_best_dynamic(grid, target));
  return (competitor - grid.avg_lambda_ms(target)) / competitor * 100.0;
}

std::vector<AlphaSweepPoint> apt_alpha_sweep(
    dag::DfgType type, const std::vector<double>& alphas,
    const std::vector<double>& rates_gbps, std::size_t jobs) {
  // One batch over the full alpha × rate × graph cube: the alphas become
  // the policy columns, so every cell is an independent task.
  std::vector<std::string> specs;
  specs.reserve(alphas.size());
  for (const double alpha : alphas)
    specs.push_back("apt:" + util::format_double(alpha, 3));

  const BatchResult result =
      BatchRunner(jobs).run(ExperimentPlan::paper(type, specs, rates_gbps));

  std::vector<AlphaSweepPoint> points;
  points.reserve(alphas.size() * rates_gbps.size());
  for (std::size_t a = 0; a < alphas.size(); ++a) {
    for (std::size_t r = 0; r < rates_gbps.size(); ++r) {
      AlphaSweepPoint point;
      point.alpha = alphas[a];
      point.rate_gbps = rates_gbps[r];
      for (std::size_t g = 0; g < result.graph_count; ++g) {
        const Cell& cell = result.at(0, r, g, a);
        point.avg_makespan_ms += cell.makespan_ms;
        point.avg_lambda_ms += cell.lambda_total_ms;
      }
      point.avg_makespan_ms /= static_cast<double>(result.graph_count);
      point.avg_lambda_ms /= static_cast<double>(result.graph_count);
      points.push_back(point);
    }
  }
  return points;
}

const std::vector<double>& paper_alphas() {
  static const std::vector<double> alphas = {1.5, 2.0, 4.0, 8.0, 16.0};
  return alphas;
}

}  // namespace apt::core
