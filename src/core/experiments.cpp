#include "core/experiments.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/policy_factory.hpp"
#include "core/runner.hpp"
#include "lut/paper_data.hpp"
#include "util/string_utils.hpp"

namespace apt::core {

double Grid::avg_makespan_ms(std::size_t policy) const {
  double sum = 0.0;
  for (const auto& row : cells) sum += row.at(policy).makespan_ms;
  return cells.empty() ? 0.0 : sum / static_cast<double>(cells.size());
}

double Grid::avg_lambda_ms(std::size_t policy) const {
  double sum = 0.0;
  for (const auto& row : cells) sum += row.at(policy).lambda_total_ms;
  return cells.empty() ? 0.0 : sum / static_cast<double>(cells.size());
}

std::size_t Grid::wins(std::size_t policy) const {
  std::size_t wins = 0;
  for (const auto& row : cells) {
    bool best = true;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != policy && row[c].makespan_ms <= row[policy].makespan_ms) {
        best = false;
        break;
      }
    }
    if (best) ++wins;
  }
  return wins;
}

std::vector<std::string> paper_policy_specs(double apt_alpha) {
  return {"apt:" + util::format_double(apt_alpha, 3),
          "met",
          "spn",
          "ss",
          "ag",
          "heft",
          "peft"};
}

namespace {

Cell cell_from(const RunOutcome& outcome) {
  Cell cell;
  cell.makespan_ms = outcome.metrics.makespan;
  cell.lambda_total_ms = outcome.metrics.lambda.total_ms;
  cell.lambda_avg_ms = outcome.metrics.lambda.avg_ms;
  cell.lambda_stddev_ms = outcome.metrics.lambda.stddev_ms;
  cell.alternative_count = outcome.metrics.alternative_count;
  cell.alternative_by_kernel = outcome.metrics.alternative_by_kernel;
  return cell;
}

}  // namespace

Grid run_paper_grid(dag::DfgType type,
                    const std::vector<std::string>& policy_specs,
                    double rate_gbps) {
  Grid grid;
  grid.type = type;
  grid.rate_gbps = rate_gbps;
  grid.policy_specs = policy_specs;

  const sim::System system(sim::SystemConfig::paper_default(rate_gbps));
  const lut::LookupTable table = lut::paper_lookup_table();
  const std::vector<dag::Dag> graphs = dag::paper_workload(type);

  for (const std::string& spec : policy_specs)
    grid.policy_names.push_back(make_policy(spec)->name());

  grid.cells.resize(graphs.size());
  for (std::size_t g = 0; g < graphs.size(); ++g) {
    grid.cells[g].reserve(policy_specs.size());
    for (const std::string& spec : policy_specs) {
      const auto policy = make_policy(spec);
      grid.cells[g].push_back(
          cell_from(run_policy(*policy, graphs[g], system, table)));
    }
  }
  return grid;
}

std::vector<Cell> run_policy_over(const std::string& policy_spec,
                                  const std::vector<dag::Dag>& graphs,
                                  double rate_gbps) {
  const sim::System system(sim::SystemConfig::paper_default(rate_gbps));
  const lut::LookupTable table = lut::paper_lookup_table();
  std::vector<Cell> cells;
  cells.reserve(graphs.size());
  for (const dag::Dag& graph : graphs) {
    const auto policy = make_policy(policy_spec);
    cells.push_back(cell_from(run_policy(*policy, graph, system, table)));
  }
  return cells;
}

bool is_dynamic_spec(const std::string& spec) {
  return make_policy(spec)->is_dynamic();
}

namespace {

/// The paper's "second-best policy": the dynamic column (other than
/// `target`) with the best average makespan. Both Eq. 13 and Eq. 14
/// compare against this same competitor.
std::size_t second_best_dynamic(const Grid& grid, std::size_t target) {
  std::size_t best = grid.policy_count();
  double best_avg = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < grid.policy_count(); ++c) {
    if (c == target || !is_dynamic_spec(grid.policy_specs.at(c))) continue;
    const double avg = grid.avg_makespan_ms(c);
    if (avg < best_avg) {
      best_avg = avg;
      best = c;
    }
  }
  if (best == grid.policy_count())
    throw std::logic_error("improvement: no dynamic competitor in grid");
  return best;
}

}  // namespace

double improvement_exec_pct(const Grid& grid, std::size_t target) {
  const double competitor =
      grid.avg_makespan_ms(second_best_dynamic(grid, target));
  return (competitor - grid.avg_makespan_ms(target)) / competitor * 100.0;
}

double improvement_lambda_pct(const Grid& grid, std::size_t target) {
  const double competitor =
      grid.avg_lambda_ms(second_best_dynamic(grid, target));
  return (competitor - grid.avg_lambda_ms(target)) / competitor * 100.0;
}

std::vector<AlphaSweepPoint> apt_alpha_sweep(
    dag::DfgType type, const std::vector<double>& alphas,
    const std::vector<double>& rates_gbps) {
  std::vector<AlphaSweepPoint> points;
  const std::vector<dag::Dag> graphs = dag::paper_workload(type);
  for (double alpha : alphas) {
    for (double rate : rates_gbps) {
      const auto cells = run_policy_over(
          "apt:" + util::format_double(alpha, 3), graphs, rate);
      AlphaSweepPoint point;
      point.alpha = alpha;
      point.rate_gbps = rate;
      for (const Cell& cell : cells) {
        point.avg_makespan_ms += cell.makespan_ms;
        point.avg_lambda_ms += cell.lambda_total_ms;
      }
      point.avg_makespan_ms /= static_cast<double>(cells.size());
      point.avg_lambda_ms /= static_cast<double>(cells.size());
      points.push_back(point);
    }
  }
  return points;
}

const std::vector<double>& paper_alphas() {
  static const std::vector<double> alphas = {1.5, 2.0, 4.0, 8.0, 16.0};
  return alphas;
}

}  // namespace apt::core
