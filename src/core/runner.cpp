#include "core/runner.hpp"

#include "core/policy_factory.hpp"
#include "lut/paper_data.hpp"
#include "sim/engine.hpp"

namespace apt::core {

RunOutcome run_policy(sim::Policy& policy, const dag::Dag& dag,
                      const sim::System& system, const sim::CostModel& cost) {
  return run_policy(policy, dag, system, cost, sim::EngineOptions{});
}

RunOutcome run_policy(sim::Policy& policy, const dag::Dag& dag,
                      const sim::System& system, const sim::CostModel& cost,
                      const sim::EngineOptions& options) {
  sim::Engine engine(dag, system, cost, options);
  RunOutcome outcome;
  outcome.policy_name = policy.name();
  outcome.result = engine.run(policy);
  outcome.metrics = sim::compute_metrics(dag, system, outcome.result);
  return outcome;
}

RunOutcome run_policy(sim::Policy& policy, const dag::Dag& dag,
                      const sim::System& system,
                      const lut::LookupTable& table) {
  const sim::LutCostModel cost(table, system);
  return run_policy(policy, dag, system, cost);
}

RunOutcome run_paper_system(const std::string& policy_spec,
                            const dag::Dag& dag, double rate_gbps) {
  const sim::System system(sim::SystemConfig::paper_default(rate_gbps));
  const auto policy = make_policy(policy_spec);
  return run_policy(*policy, dag, system, lut::paper_lookup_table());
}

}  // namespace apt::core
