#include "core/apt_remaining.hpp"

#include "util/string_utils.hpp"

namespace apt::core {

std::string AptRemaining::util_alpha_string() const {
  return util::format_double(options().alpha, 2);
}

}  // namespace apt::core
