// The paper's experiment harness: runs policy sets over the ten Type-1 /
// Type-2 workload graphs, aggregates the metrics the thesis tabulates, and
// computes the improvement figures of Eq. (13)/(14). Every bench binary is
// a thin formatter over these functions.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dag/generator.hpp"
#include "sim/metrics.hpp"
#include "sim/system.hpp"

namespace apt::core {

/// One (experiment, policy) cell of a results grid.
struct Cell {
  sim::TimeMs makespan_ms = 0.0;
  sim::TimeMs lambda_total_ms = 0.0;
  sim::TimeMs lambda_avg_ms = 0.0;
  sim::TimeMs lambda_stddev_ms = 0.0;
  std::size_t alternative_count = 0;
  std::map<std::string, std::size_t> alternative_by_kernel;
};

/// Results of a full policy-set × 10-experiment sweep at one transfer rate.
struct Grid {
  dag::DfgType type = dag::DfgType::Type1;
  double rate_gbps = 4.0;
  std::vector<std::string> policy_names;   ///< column order
  std::vector<std::string> policy_specs;   ///< factory specs per column
  std::vector<std::vector<Cell>> cells;    ///< [experiment][policy]

  std::size_t experiment_count() const noexcept { return cells.size(); }
  std::size_t policy_count() const noexcept { return policy_names.size(); }

  /// Mean makespan over experiments for one policy column.
  double avg_makespan_ms(std::size_t policy) const;
  /// Mean total-λ over experiments for one policy column.
  double avg_lambda_ms(std::size_t policy) const;
  /// Experiments in which the column attains the row's minimum makespan —
  /// the thesis's "number of occurrences of better solutions". Ties are
  /// shared wins: every column matching the row minimum counts the
  /// experiment, so tied rows credit each tied policy once (and a row's
  /// winner counts can sum to more than 1).
  std::size_t wins(std::size_t policy) const;
};

/// The thesis's default policy columns: APT(α), MET, SPN, SS, AG, HEFT, PEFT.
std::vector<std::string> paper_policy_specs(double apt_alpha);

/// Runs every policy spec over the ten paper graphs of `type` on the
/// 1×CPU+1×GPU+1×FPGA system at `rate_gbps`, fanning the
/// (graph × policy) simulations over `jobs` worker threads (1 = serial,
/// 0 = one per hardware thread). Results are bit-identical for any job
/// count.
Grid run_paper_grid(dag::DfgType type,
                    const std::vector<std::string>& policy_specs,
                    double rate_gbps = 4.0, std::size_t jobs = 1);

/// Runs one policy spec over explicit graphs (for custom workloads).
std::vector<Cell> run_policy_over(const std::string& policy_spec,
                                  const std::vector<dag::Dag>& graphs,
                                  double rate_gbps = 4.0);

/// Flattens a run's metrics into one results-grid cell.
struct RunOutcome;
Cell cell_from_outcome(const RunOutcome& outcome);

// --- Improvement metrics (thesis §4.4) ---------------------------------------

/// True when the spec names a dynamic policy (the comparison base of
/// Eq. 13/14 is restricted to dynamic competitors).
bool is_dynamic_spec(const std::string& spec);

/// Percentage improvement of column `target` over the best *other dynamic*
/// column on average makespan (Eq. 13); negative when the competitor wins.
double improvement_exec_pct(const Grid& grid, std::size_t target);

/// Same for average total λ (Eq. 14).
double improvement_lambda_pct(const Grid& grid, std::size_t target);

// --- α / transfer-rate sweeps (Figures 7, 9, 11, 12) --------------------------

struct AlphaSweepPoint {
  double alpha = 0.0;
  double rate_gbps = 0.0;
  double avg_makespan_ms = 0.0;
  double avg_lambda_ms = 0.0;
};

/// Average APT performance over the ten paper graphs of `type` for each
/// (alpha, rate) combination. The (alpha × rate × graph) simulations fan
/// over `jobs` worker threads (1 = serial, 0 = hardware).
std::vector<AlphaSweepPoint> apt_alpha_sweep(
    dag::DfgType type, const std::vector<double>& alphas,
    const std::vector<double>& rates_gbps, std::size_t jobs = 1);

/// The α grid used throughout the thesis: {1.5, 2, 4, 8, 16}.
const std::vector<double>& paper_alphas();

}  // namespace apt::core
