#include "core/stream_plan.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/policy_factory.hpp"
#include "dag/generator.hpp"
#include "obs/profile.hpp"
#include "lut/paper_data.hpp"
#include "scenario/scenario.hpp"
#include "sim/cost_model.hpp"
#include "stream/stream_engine.hpp"
#include "util/rng.hpp"

namespace apt::core {

namespace {

/// Salt decorrelating per-cell instance-generation streams from the cell's
/// arrival/policy seed (same pattern as make_scenario_plan's graph salt).
constexpr std::uint64_t kInstanceSeedSalt = 0x57AE4E6A11CE5EEDULL;

/// Salt separating the per-row workload seed family from the per-cell
/// policy seed family derived from the same base seed.
constexpr std::uint64_t kWorkloadSeedSalt = 0xB10B5EA4B0A7F00DULL;

/// Salt folding the plan's noise seed into each row's workload seed, so
/// rows draw decorrelated noise but every policy column (and hedging mode)
/// of one row faces the identical perturbations.
constexpr std::uint64_t kNoiseSeedSalt = 0x4015E5EEDC3115A7ULL;

}  // namespace

std::vector<std::string> StreamPlan::validate() const {
  if (families.empty())
    throw std::invalid_argument("StreamPlan: no families");
  if (rates_per_ms.empty())
    throw std::invalid_argument("StreamPlan: no arrival rates");
  if (policy_specs.empty())
    throw std::invalid_argument("StreamPlan: no policy specs");
  if (kernels == 0)
    throw std::invalid_argument("StreamPlan: kernels must be >= 1");
  if (arrival_kind == stream::ArrivalKind::Trace) {
    // The rate axis is a label under a trace; the instants themselves must
    // validate. Reuse the spec's own checks (non-negative, non-decreasing).
    if (trace_arrivals.empty())
      throw std::invalid_argument(
          "StreamPlan: trace arrivals need trace_arrivals instants");
    stream::ArrivalSpec::trace(trace_arrivals).validate();
  } else {
    for (const double rate : rates_per_ms) {
      if (!(rate > 0.0))
        throw std::invalid_argument(
            "StreamPlan: arrival rates must be > 0 apps/ms");
    }
  }
  if (arrival_kind != stream::ArrivalKind::Trace && max_apps == 0 &&
      !(horizon_ms > 0.0))
    throw std::invalid_argument(
        "StreamPlan: set max_apps or horizon_ms to bound the run");
  if (warmup_ms < 0.0)
    throw std::invalid_argument("StreamPlan: warmup must be >= 0");
  noise.validate();
  hedging.validate();
  for (const std::string& name : families)
    scenario::family(name);  // throws with the known-family list on a miss

  // Fail fast on malformed/static specs; column p's first cell is flat
  // index p, so seeded specs resolve here exactly as that cell will.
  std::vector<std::string> names;
  names.reserve(policy_specs.size());
  for (std::size_t p = 0; p < policy_specs.size(); ++p) {
    const auto policy = make_policy(
        resolve_policy_spec(policy_specs[p], util::stream_seed(base_seed, p)));
    if (!policy->is_dynamic())
      throw std::invalid_argument(
          "StreamPlan: policy '" + policy_specs[p] +
          "' plans statically from the whole DAG and cannot schedule an "
          "open-system stream — use a dynamic policy");
    names.push_back(policy->name());
  }
  return names;
}

StreamCellCoords stream_cell_coords(const StreamPlan& plan,
                                    std::size_t flat_index) {
  StreamCellCoords c;
  c.index = flat_index;
  c.policy = flat_index % plan.policy_specs.size();
  flat_index /= plan.policy_specs.size();
  c.rate = flat_index % plan.rates_per_ms.size();
  c.family = flat_index / plan.rates_per_ms.size();
  c.seed = util::stream_seed(plan.base_seed, c.index);
  c.workload_seed =
      util::stream_seed(plan.base_seed ^ kWorkloadSeedSalt,
                        c.family * plan.rates_per_ms.size() + c.rate);
  return c;
}

const StreamCellResult& StreamBatchResult::at(std::size_t family,
                                              std::size_t rate,
                                              std::size_t policy) const {
  if (family >= families.size() || rate >= rates_per_ms.size() ||
      policy >= policy_names.size())
    throw std::out_of_range(
        "StreamBatchResult::at: index outside the result grid");
  return cells[(family * rates_per_ms.size() + rate) * policy_names.size() +
               policy];
}

StreamBatchResult run_stream_plan(const StreamPlan& plan,
                                  const BatchRunner& runner) {
  std::vector<std::string> policy_names = plan.validate();

  const lut::LookupTable paper_fallback =
      plan.table.empty() ? lut::paper_lookup_table() : lut::LookupTable();
  const lut::LookupTable& table =
      plan.table.empty() ? paper_fallback : plan.table;

  // Shared read-only inputs: one system, one base cost model, one kernel
  // pool. Each cell densifies the base model per instance on its own.
  const sim::System system(plan.base_system);
  const sim::LutCostModel base_cost(table, system);
  const dag::KernelPool pool = dag::KernelPool::from_lookup_table(table);

  StreamBatchResult result;
  result.families = plan.families;
  result.rates_per_ms = plan.rates_per_ms;
  result.policy_names = std::move(policy_names);
  result.policy_specs = plan.policy_specs;
  result.cells.resize(plan.cell_count());

  runner.for_each_index(result.cells.size(), [&](std::size_t i) {
    const StreamCellCoords cell = stream_cell_coords(plan, i);
    const scenario::ScenarioFamily& family =
        scenario::family(plan.families[cell.family]);
    const std::size_t kernels = std::max(family.min_kernels(), plan.kernels);

    stream::StreamOptions options;
    options.arrivals.kind = plan.arrival_kind;
    options.arrivals.rate_per_ms = plan.rates_per_ms[cell.rate];
    options.arrivals.seed = cell.workload_seed;
    if (plan.arrival_kind == stream::ArrivalKind::Trace)
      options.arrivals.arrival_times_ms = plan.trace_arrivals;
    options.max_apps = plan.max_apps;
    options.horizon_ms = plan.horizon_ms;
    options.warmup_ms = plan.warmup_ms;
    options.noise = plan.noise;
    options.hedging = plan.hedging;
    // The effective noise seed is per row (workload seed), not per cell:
    // every policy column — and a hedging-on rerun of the same plan — sees
    // the identical perturbation of the identical workload, so column
    // differences measure scheduling, not luck.
    options.noise.seed =
        util::stream_seed(cell.workload_seed ^ kNoiseSeedSalt,
                          plan.noise.seed);

    // Observability taps: a per-cell profile (stack-local — its snapshot is
    // folded into the cell's metrics before it goes out of scope), and the
    // plan's trace sink attached to exactly one cell so concurrent workers
    // never interleave events into it.
    obs::Profile profile;
    if (plan.profile) options.profile = &profile;
    if (plan.trace_sink && i == plan.trace_cell)
      options.sink = plan.trace_sink;

    // Instance k of the row is fully named by (workload seed, k): the same
    // coordinates regenerate the same application stream on any worker, and
    // every policy column of the row faces the identical stream.
    const std::uint64_t instance_base = cell.workload_seed ^ kInstanceSeedSalt;
    stream::DagSource source = [&family, kernels, instance_base,
                                &pool](std::size_t k) {
      return family.generate(kernels, util::stream_seed(instance_base, k),
                             pool);
    };

    const auto policy = make_policy(
        resolve_policy_spec(plan.policy_specs[cell.policy], cell.seed));
    stream::StreamEngine engine(system, base_cost, std::move(source),
                                std::move(options));
    const stream::StreamOutcome outcome = engine.run(*policy);

    StreamCellResult& out = result.cells[i];
    out.family = plan.families[cell.family];
    out.rate_per_ms = plan.rates_per_ms[cell.rate];
    out.policy_name = result.policy_names[cell.policy];
    out.policy_spec = plan.policy_specs[cell.policy];
    out.metrics = outcome.metrics;
  });
  return result;
}

}  // namespace apt::core
