// Batch experiment orchestration: declarative sweep specs executed across a
// worker pool.
//
// An ExperimentPlan names the axes of a sweep — a DAG set × policy specs ×
// link rates × replications — and BatchRunner expands it into one
// simulation task per combination, fans the tasks over a thread pool, and
// collects the cells into a BatchResult indexed by the original axes.
//
// Determinism: every task is an isolated simulation (own policy instance,
// own system, own cost model) whose inputs depend only on the plan and the
// task's coordinates, and every task writes a pre-allocated result slot.
// Results are therefore bit-for-bit identical for any worker count,
// including the serial path (jobs == 1). Stochastic policies get their
// randomness from a per-task RNG stream: write "{seed}" in a policy spec
// (e.g. "random:{seed}") and each task substitutes
// util::stream_seed(plan.base_seed, task_index) — replications differ,
// reruns reproduce.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/experiments.hpp"
#include "core/runner.hpp"
#include "dag/graph.hpp"
#include "lut/lookup_table.hpp"
#include "lut/synthetic.hpp"
#include "sim/system.hpp"
#include "util/thread_pool.hpp"

namespace apt::core {

/// Coordinates of one simulation task inside a plan.
struct BatchTask {
  std::size_t topology = 0;  ///< index into the plan's topology axis
  std::size_t replication = 0;
  std::size_t rate = 0;    ///< index into ExperimentPlan::rates_gbps
  std::size_t graph = 0;   ///< index into ExperimentPlan::graphs
  std::size_t policy = 0;  ///< index into ExperimentPlan::policy_specs
  std::size_t index = 0;   ///< flat task index (the RNG stream id)
  std::uint64_t seed = 0;  ///< util::stream_seed(base_seed, index)
};

/// Declarative sweep specification. The task order (and therefore the RNG
/// stream assignment) is row-major over topology, replication, rate,
/// graph, policy — topology OUTERMOST so a single-topology plan's flat
/// indices (and therefore its "{seed}" policy streams) are identical to
/// the historical four-axis layout, and adding topologies appends whole
/// blocks without renumbering existing cells.
struct ExperimentPlan {
  std::vector<dag::Dag> graphs;
  std::vector<std::string> policy_specs;
  std::vector<double> rates_gbps = {4.0};

  /// Interconnect topology axis. Empty (the default) means one implicit
  /// topology — base_system.topology — which keeps every pre-axis plan
  /// seed-stable; non-empty overrides base_system.topology per task.
  std::vector<net::TopologySpec> topologies;

  std::size_t replications = 1;
  std::uint64_t base_seed = 0;

  /// Platform template; link_rate_gbps is overridden by the rate axis and
  /// topology by the topology axis (when non-empty).
  sim::SystemConfig base_system = sim::SystemConfig::paper_default();

  /// Cost table; defaults to the paper's lookup table.
  lut::LookupTable table;

  /// Convenience: the paper workload of `type` under the paper platform.
  static ExperimentPlan paper(dag::DfgType type,
                              std::vector<std::string> policy_specs,
                              std::vector<double> rates_gbps = {4.0});

  /// Size of the topology axis (>= 1: the implicit base_system topology
  /// counts when `topologies` is empty).
  std::size_t topology_count() const noexcept {
    return topologies.empty() ? 1 : topologies.size();
  }

  /// The spec of topology-axis index `t` (base_system.topology when the
  /// axis is implicit).
  const net::TopologySpec& topology_spec(std::size_t t) const {
    return topologies.empty() ? base_system.topology : topologies.at(t);
  }

  std::size_t task_count() const noexcept;
  BatchTask task(std::size_t flat_index) const;

  /// Throws std::invalid_argument when an axis is empty or a spec is
  /// malformed; returns the resolved display name of every policy column
  /// (the by-product of checking the specs, so callers need not construct
  /// the policies again).
  std::vector<std::string> validate() const;
};

/// Dense result cube addressed by the plan's axes.
struct BatchResult {
  std::size_t topology_count = 1;
  std::size_t replications = 0;
  std::size_t rate_count = 0;
  std::size_t graph_count = 0;
  std::size_t policy_count = 0;
  std::vector<std::string> topology_labels;  ///< [topology] display labels
  std::vector<std::string> policy_names;  ///< resolved display names
  std::vector<std::string> policy_specs;
  std::vector<double> rates_gbps;
  std::vector<Cell> cells;  ///< flat, in plan task order

  /// Full five-axis lookup (topology outermost, matching task order).
  const Cell& at(std::size_t topology, std::size_t replication,
                 std::size_t rate, std::size_t graph,
                 std::size_t policy) const;

  /// Four-axis convenience: topology 0 — exact historical behaviour for
  /// single-topology plans.
  const Cell& at(std::size_t replication, std::size_t rate, std::size_t graph,
                 std::size_t policy) const {
    return at(0, replication, rate, graph, policy);
  }

  /// One (topology, rate, replication) slice as the classic Grid.
  Grid grid(dag::DfgType type, std::size_t rate = 0,
            std::size_t replication = 0, std::size_t topology = 0) const;
};

/// Axes of a scenario-cube sweep: workload families × seeded graphs ×
/// platform. Expanded by make_scenario_plan into a concrete ExperimentPlan —
/// graphs are generated up-front on the calling thread, so BatchRunner's
/// bit-identical-for-any-job-count guarantee extends to scenario sweeps.
struct ScenarioSweepSpec {
  /// Registered scenario-family names (see scenario::family_names()).
  std::vector<std::string> families = {"type1"};

  std::size_t graphs_per_family = 10;

  /// Kernel count of the g-th graph of each family cycles through this
  /// list, raised to the family's minimum where below it.
  std::vector<std::size_t> kernel_counts = {46};

  /// Graph g of family f draws its seed from an independent stream of this
  /// base (decorrelated from the plan's policy-seed streams).
  std::uint64_t graph_seed = 1;

  /// Platform: when set, the plan's lookup table AND the generators' kernel
  /// pool come from synthetic_lookup_table(*synthetic); otherwise the
  /// paper's measured table.
  std::optional<lut::SyntheticLutSpec> synthetic;

  /// Interconnect topology of the platform (src/net). Default ideal keeps
  /// the uncontended behaviour; any other kind turns the scenario cube
  /// into family × CCR × heterogeneity × topology, with the plan's rate
  /// axis sweeping the fabric bandwidth when the spec's own bandwidth is 0.
  net::TopologySpec topology;

  /// Multi-topology axis: when non-empty, the plan sweeps these specs as
  /// its outermost axis (ExperimentPlan::topologies) and `topology` above
  /// is ignored. Single-element lists behave exactly like `topology`.
  std::vector<net::TopologySpec> topologies;
};

/// Expands a scenario spec into a plan with graphs and table filled in.
/// Throws std::invalid_argument on empty axes or unknown family names.
ExperimentPlan make_scenario_plan(const ScenarioSweepSpec& spec,
                                  std::vector<std::string> policy_specs,
                                  std::vector<double> rates_gbps = {4.0});

/// Display label of every graph the spec expands to ("<family>/n<kernels>",
/// same order as the plan's graph axis) — lets result exporters attribute a
/// cell to its scenario coordinates instead of a bare graph index.
std::vector<std::string> scenario_graph_labels(const ScenarioSweepSpec& spec);

/// Expands "{seed}" placeholders in a policy spec with the task's stream
/// seed (exposed for tests).
std::string resolve_policy_spec(const std::string& spec, std::uint64_t seed);

/// Executes ExperimentPlans over a fixed number of worker threads. The
/// worker pool is created on the first parallel run() and reused by later
/// ones, so a long-lived runner pays thread spawn-up once. Not safe for
/// concurrent run() calls from multiple threads (tasks are already fanned
/// out internally).
class BatchRunner {
 public:
  /// `jobs` == 1 runs serially on the caller; 0 means one job per hardware
  /// thread.
  explicit BatchRunner(std::size_t jobs = 1);
  ~BatchRunner();

  std::size_t jobs() const noexcept { return jobs_; }

  BatchResult run(const ExperimentPlan& plan) const;

  /// Runs body(0) .. body(count-1) over this runner's workers (inline on
  /// the caller when jobs <= 1), reusing the lazily created pool. The
  /// primitive behind run() — exposed so other plan shapes (the streaming
  /// grid of core/stream_plan.hpp) fan out under the same determinism
  /// contract: bodies must write only their own pre-allocated slot.
  void for_each_index(std::size_t count,
                      const std::function<void(std::size_t)>& body) const;

 private:
  std::size_t jobs_;
  /// Created on the first parallel call, sized to jobs, reused after.
  mutable std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace apt::core
