// Alternative Processor within Threshold — the paper's contribution
// (thesis Chapter 3, Algorithm 1).
//
// APT is MET with tunable flexibility. Each ready kernel v_i (FIFO order):
//
//   1. Find p_min, the processor with the smallest execution time x for v_i
//      (a lookup-table query). If an optimal processor is idle, assign.
//   2. Otherwise compute threshold = α · x (α ≥ 1, Eq. 8) and look for an
//      *alternative* idle processor p_alt whose execution time plus
//      input-data transfer time is within the threshold; assign to the
//      cheapest such processor, or wait if none qualifies.
//
// α controls the flexibility/affinity trade-off: α → 1 degenerates to MET
// (always wait for the best processor); large α floods slow processors.
// The thesis finds a "valley" with the best makespan at threshold_brk ≈ 4
// for its CPU+GPU+FPGA system.
//
// Two comm-aware variants ride on the structured TransferEstimate contract:
//  * APT-C (comm_aware): the alternative-cost test prices transfers with
//    total_ms() — unloaded stall PLUS the predicted drain of the route
//    links' in-flight traffic — so a nominally-idle alternative behind a
//    congested link stops looking free. Identical to APT on an ideal
//    topology (the queueing term is always 0 there).
//  * APT-Q (rank_quantile = q): tail-aware ranking under service-time
//    noise. Costs become exec · m_q + quantile_ms(q) with m_q the
//    q-quantile of the run's noise-multiplier mixture, and the threshold
//    scales by the same m_q. With noise off m_q == 1 and quantile_ms ==
//    total_ms, so APT-Q degenerates to APT-C bit-for-bit.
#pragma once

#include <optional>

#include "sim/policy.hpp"

namespace apt::core {

struct AptOptions {
  double alpha = 4.0;  ///< threshold multiplier (must be >= 1, Eq. 8)

  /// Include the input-data transfer time in the threshold comparison (the
  /// paper's definition). Disabled only by the ablation bench.
  bool transfer_aware = true;

  /// Also compare the alternative against waiting for p_min to drain
  /// (remaining busy time + x) — the thesis's announced future-work
  /// extension; see AptRemaining for the packaged policy.
  bool consider_remaining_time = false;

  /// Price transfers with the backlog-aware reading (total_ms()) instead
  /// of the unloaded stall. Names the policy "APT-C".
  bool comm_aware = false;

  /// Rank by the q-quantile of cost under the run's noise spec (0 =
  /// disabled). Names the policy "APT-Q"; implies transfer pricing via
  /// quantile_ms(q). Must be in [0, 1).
  double rank_quantile = 0.0;
};

class Apt : public sim::Policy {
 public:
  Apt() = default;
  explicit Apt(AptOptions options);
  explicit Apt(double alpha) : Apt(AptOptions{alpha, true, false}) {}

  std::string name() const override;
  bool is_dynamic() const override { return true; }
  void prepare(const dag::Dag& dag, const sim::System& system,
               const sim::CostModel& cost_model) override;
  void on_event(sim::SchedulerContext& ctx) override;

  const AptOptions& options() const noexcept { return options_; }

 private:
  AptOptions options_;

  /// Cached m_q = noise_quantile_multiplier(run spec, rank_quantile);
  /// the spec is fixed per run, so the bisection runs once. Reset by
  /// prepare(), filled lazily from the first on_event's context.
  mutable std::optional<double> quantile_mult_;
};

}  // namespace apt::core
