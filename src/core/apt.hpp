// Alternative Processor within Threshold — the paper's contribution
// (thesis Chapter 3, Algorithm 1).
//
// APT is MET with tunable flexibility. Each ready kernel v_i (FIFO order):
//
//   1. Find p_min, the processor with the smallest execution time x for v_i
//      (a lookup-table query). If an optimal processor is idle, assign.
//   2. Otherwise compute threshold = α · x (α ≥ 1, Eq. 8) and look for an
//      *alternative* idle processor p_alt whose execution time plus
//      input-data transfer time is within the threshold; assign to the
//      cheapest such processor, or wait if none qualifies.
//
// α controls the flexibility/affinity trade-off: α → 1 degenerates to MET
// (always wait for the best processor); large α floods slow processors.
// The thesis finds a "valley" with the best makespan at threshold_brk ≈ 4
// for its CPU+GPU+FPGA system.
#pragma once

#include "sim/policy.hpp"

namespace apt::core {

struct AptOptions {
  double alpha = 4.0;  ///< threshold multiplier (must be >= 1, Eq. 8)

  /// Include the input-data transfer time in the threshold comparison (the
  /// paper's definition). Disabled only by the ablation bench.
  bool transfer_aware = true;

  /// Also compare the alternative against waiting for p_min to drain
  /// (remaining busy time + x) — the thesis's announced future-work
  /// extension; see AptRemaining for the packaged policy.
  bool consider_remaining_time = false;
};

class Apt : public sim::Policy {
 public:
  Apt() = default;
  explicit Apt(AptOptions options);
  explicit Apt(double alpha) : Apt(AptOptions{alpha, true, false}) {}

  std::string name() const override;
  bool is_dynamic() const override { return true; }
  void on_event(sim::SchedulerContext& ctx) override;

  const AptOptions& options() const noexcept { return options_; }

 private:
  AptOptions options_;
};

}  // namespace apt::core
