#include "core/report.hpp"

#include <fstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/string_utils.hpp"

namespace apt::core {

const char* to_string(GridValue value) noexcept {
  switch (value) {
    case GridValue::Makespan: return "makespan_ms";
    case GridValue::LambdaTotal: return "lambda_total_ms";
    case GridValue::AlternativeCount: return "alternative_count";
  }
  return "?";
}

namespace {

double cell_value(const Cell& cell, GridValue value) {
  switch (value) {
    case GridValue::Makespan: return cell.makespan_ms;
    case GridValue::LambdaTotal: return cell.lambda_total_ms;
    case GridValue::AlternativeCount:
      return static_cast<double>(cell.alternative_count);
  }
  return 0.0;
}

std::string format_cell(double v, GridValue value) {
  return value == GridValue::AlternativeCount
             ? std::to_string(static_cast<long long>(v))
             : util::format_double(v, 3);
}

}  // namespace

std::string grid_to_csv(const Grid& grid, GridValue value) {
  util::CsvRow header = {"experiment"};
  for (const auto& name : grid.policy_names) header.push_back(name);
  util::CsvTable table(header);
  std::vector<double> sums(grid.policy_count(), 0.0);
  for (std::size_t g = 0; g < grid.experiment_count(); ++g) {
    util::CsvRow row = {std::to_string(g + 1)};
    for (std::size_t p = 0; p < grid.policy_count(); ++p) {
      const double v = cell_value(grid.cells[g][p], value);
      sums[p] += v;
      row.push_back(format_cell(v, value));
    }
    table.add_row(std::move(row));
  }
  util::CsvRow avg = {"avg"};
  for (std::size_t p = 0; p < grid.policy_count(); ++p)
    avg.push_back(util::format_double(
        sums[p] / static_cast<double>(grid.experiment_count()), 3));
  table.add_row(std::move(avg));
  return util::to_csv_string(table);
}

std::string grid_to_markdown(const Grid& grid, GridValue value) {
  std::string out = "| Experiment |";
  for (const auto& name : grid.policy_names) out += " " + name + " |";
  out += "\n|---|";
  for (std::size_t p = 0; p < grid.policy_count(); ++p) out += "---:|";
  out += "\n";
  std::vector<double> sums(grid.policy_count(), 0.0);
  for (std::size_t g = 0; g < grid.experiment_count(); ++g) {
    out += "| " + std::to_string(g + 1) + " |";
    for (std::size_t p = 0; p < grid.policy_count(); ++p) {
      const double v = cell_value(grid.cells[g][p], value);
      sums[p] += v;
      out += " " + format_cell(v, value) + " |";
    }
    out += "\n";
  }
  out += "| **avg** |";
  for (std::size_t p = 0; p < grid.policy_count(); ++p) {
    out += " **" +
           util::format_double(
               sums[p] / static_cast<double>(grid.experiment_count()), 1) +
           "** |";
  }
  out += "\n";
  return out;
}

std::string sweep_to_csv(const std::vector<AlphaSweepPoint>& points) {
  util::CsvTable table(
      {"alpha", "rate_gbps", "avg_makespan_ms", "avg_lambda_ms"});
  for (const auto& p : points) {
    table.add_row({util::format_double(p.alpha, 3),
                   util::format_double(p.rate_gbps, 3),
                   util::format_double(p.avg_makespan_ms, 3),
                   util::format_double(p.avg_lambda_ms, 3)});
  }
  return util::to_csv_string(table);
}

namespace {

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("report: cannot open '" + path + "'");
  out << content;
  if (!out) throw std::runtime_error("report: write failed: " + path);
}

}  // namespace

std::vector<std::string> write_report_bundle(const std::string& directory,
                                             double alpha) {
  std::vector<std::string> written;
  auto emit = [&](const std::string& name, const std::string& content) {
    write_file(directory + "/" + name, content);
    written.push_back(name);
  };
  for (const dag::DfgType type : {dag::DfgType::Type1, dag::DfgType::Type2}) {
    const std::string tag = type == dag::DfgType::Type1 ? "type1" : "type2";
    const Grid grid = run_paper_grid(type, paper_policy_specs(alpha), 4.0);
    emit(tag + "_makespan.csv", grid_to_csv(grid, GridValue::Makespan));
    emit(tag + "_lambda.csv", grid_to_csv(grid, GridValue::LambdaTotal));
    emit(tag + "_alternatives.csv",
         grid_to_csv(grid, GridValue::AlternativeCount));
    emit(tag + "_makespan.md", grid_to_markdown(grid, GridValue::Makespan));
    emit(tag + "_alpha_sweep.csv",
         sweep_to_csv(apt_alpha_sweep(type, paper_alphas(), {4.0, 8.0})));
  }
  return written;
}

}  // namespace apt::core
