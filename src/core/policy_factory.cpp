#include "core/policy_factory.hpp"

#include <stdexcept>

#include "core/apt.hpp"
#include "core/apt_ranked.hpp"
#include "core/apt_remaining.hpp"
#include "policies/ag.hpp"
#include "policies/batch_mode.hpp"
#include "policies/heft.hpp"
#include "policies/met.hpp"
#include "policies/olb.hpp"
#include "policies/peft.hpp"
#include "policies/random_policy.hpp"
#include "policies/spn.hpp"
#include "policies/ss.hpp"
#include "util/string_utils.hpp"

namespace apt::core {

std::unique_ptr<sim::Policy> make_policy(const std::string& spec) {
  const std::string lowered = util::to_lower(util::trim(spec));
  std::string head = lowered;
  std::string arg;
  if (const auto colon = lowered.find(':'); colon != std::string::npos) {
    head = lowered.substr(0, colon);
    arg = lowered.substr(colon + 1);
  }

  if (head == "apt") {
    const double alpha = arg.empty() ? 4.0 : util::parse_double(arg);
    return std::make_unique<Apt>(alpha);
  }
  if (head == "apt-r" || head == "aptr") {
    const double alpha = arg.empty() ? 4.0 : util::parse_double(arg);
    return std::make_unique<AptRemaining>(alpha);
  }
  if (head == "apt-ranked" || head == "aptranked") {
    const double alpha = arg.empty() ? 4.0 : util::parse_double(arg);
    return std::make_unique<AptRanked>(alpha);
  }
  if (head == "met") return std::make_unique<policies::Met>();
  if (head == "spn") return std::make_unique<policies::Spn>();
  if (head == "ss") return std::make_unique<policies::SerialScheduling>();
  if (head == "ag") {
    policies::AgOptions options;
    if (arg == "recent")
      options.estimate = policies::AgQueueEstimate::RecentAverage;
    else if (!arg.empty())
      throw std::invalid_argument("make_policy: unknown AG variant '" + arg + "'");
    return std::make_unique<policies::AdaptiveGreedy>(options);
  }
  if (head == "olb") return std::make_unique<policies::Olb>();
  if (head == "minmin" || head == "min-min")
    return std::make_unique<policies::BatchMode>(policies::BatchRule::MinMin);
  if (head == "maxmin" || head == "max-min")
    return std::make_unique<policies::BatchMode>(policies::BatchRule::MaxMin);
  if (head == "sufferage")
    return std::make_unique<policies::BatchMode>(
        policies::BatchRule::Sufferage);
  if (head == "heft") return std::make_unique<policies::Heft>();
  if (head == "peft") return std::make_unique<policies::Peft>();
  if (head == "random") {
    const std::uint64_t seed = arg.empty() ? 42 : util::parse_uint(arg);
    return std::make_unique<policies::RandomPolicy>(seed);
  }
  throw std::invalid_argument("make_policy: unknown policy spec '" + spec + "'");
}

std::vector<std::string> known_policy_specs() {
  return {"apt",    "apt:<alpha>", "apt-r",     "apt-r:<alpha>",
          "apt-ranked", "apt-ranked:<alpha>",
          "met",    "spn",         "ss",        "ag",
          "ag:recent", "olb",      "minmin",    "maxmin",
          "sufferage", "heft",     "peft",      "random",
          "random:<seed>"};
}

std::vector<std::unique_ptr<sim::Policy>> paper_policy_set(double apt_alpha) {
  std::vector<std::unique_ptr<sim::Policy>> set;
  set.push_back(std::make_unique<Apt>(apt_alpha));
  set.push_back(std::make_unique<policies::Met>());
  set.push_back(std::make_unique<policies::Spn>());
  set.push_back(std::make_unique<policies::SerialScheduling>());
  set.push_back(std::make_unique<policies::AdaptiveGreedy>());
  set.push_back(std::make_unique<policies::Heft>());
  set.push_back(std::make_unique<policies::Peft>());
  return set;
}

}  // namespace apt::core
