#include "core/policy_factory.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "core/apt.hpp"
#include "core/apt_ranked.hpp"
#include "core/apt_remaining.hpp"
#include "policies/ag.hpp"
#include "policies/batch_mode.hpp"
#include "policies/heft.hpp"
#include "policies/met.hpp"
#include "policies/olb.hpp"
#include "policies/peft.hpp"
#include "policies/random_policy.hpp"
#include "policies/spn.hpp"
#include "policies/ss.hpp"
#include "util/string_utils.hpp"

namespace apt::core {

namespace {

/// A registry row plus what the header-visible PolicyInfo omits: the
/// factory itself, the placeholder name of the optional argument (for
/// known_policy_specs), and concrete advertised variants ("ag:recent").
struct Entry {
  PolicyInfo info;
  std::string param;  ///< "<param>" placeholder name; empty = no argument
  std::vector<std::string> advertised;  ///< extra concrete specs to list
  std::function<std::unique_ptr<sim::Policy>(const std::string& arg)> make;
};

std::unique_ptr<sim::Policy> make_ag(policies::AgQueueEstimate estimate,
                                     bool comm_aware) {
  policies::AgOptions options;
  options.estimate = estimate;
  options.comm_aware = comm_aware;
  return std::make_unique<policies::AdaptiveGreedy>(options);
}

/// APT-Q's planning quantile. Fixed rather than spec-settable: the point of
/// the variant is one canonical tail-aware column next to APT/APT-C in
/// every ablation, not another free parameter to sweep.
constexpr double kAptQQuantile = 0.95;

const std::vector<Entry>& registry() {
  static const std::vector<Entry> table = [] {
    std::vector<Entry> t;
    const auto alpha_of = [](const std::string& arg) {
      return arg.empty() ? 4.0 : util::parse_double(arg);
    };
    t.push_back({{"apt", {}, "apt[:alpha]",
                  "Alternative Processor within Threshold (the paper's "
                  "policy; alpha >= 1, default 4)",
                  true},
                 "alpha",
                 {},
                 [alpha_of](const std::string& arg) {
                   return std::make_unique<Apt>(alpha_of(arg));
                 }});
    t.push_back({{"apt-c", {"aptc"}, "apt-c[:alpha]",
                  "APT pricing transfers with predicted link backlog "
                  "(TransferEstimate::total_ms); == APT on ideal fabrics",
                  true, true},
                 "alpha",
                 {},
                 [alpha_of](const std::string& arg) {
                   AptOptions options;
                   options.alpha = alpha_of(arg);
                   options.comm_aware = true;
                   return std::make_unique<Apt>(options);
                 }});
    t.push_back({{"apt-q", {"aptq"}, "apt-q[:alpha]",
                  "APT ranking by the p95 cost quantile under the run's "
                  "noise spec; == APT-C when noise is off",
                  true, true},
                 "alpha",
                 {},
                 [alpha_of](const std::string& arg) {
                   AptOptions options;
                   options.alpha = alpha_of(arg);
                   options.comm_aware = true;
                   options.rank_quantile = kAptQQuantile;
                   return std::make_unique<Apt>(options);
                 }});
    t.push_back({{"apt-r", {"aptr"}, "apt-r[:alpha]",
                  "APT with the remaining-time extension (waits when "
                  "draining p_min beats the alternative)",
                  true},
                 "alpha",
                 {},
                 [alpha_of](const std::string& arg) {
                   return std::make_unique<AptRemaining>(alpha_of(arg));
                 }});
    t.push_back({{"apt-ranked", {"aptranked"}, "apt-ranked[:alpha]",
                  "APT serving the ready set in HEFT upward-rank order",
                  true},
                 "alpha",
                 {},
                 [alpha_of](const std::string& arg) {
                   return std::make_unique<AptRanked>(alpha_of(arg));
                 }});
    t.push_back({{"met", {}, "met",
                  "Minimum Execution Time (waits for the best processor)",
                  true},
                 "",
                 {},
                 [](const std::string&) {
                   return std::make_unique<policies::Met>();
                 }});
    t.push_back({{"spn", {}, "spn", "Shortest Process Next", true},
                 "",
                 {},
                 [](const std::string&) {
                   return std::make_unique<policies::Spn>();
                 }});
    t.push_back({{"ss", {}, "ss", "Serial Scheduling (one processor)", true},
                 "",
                 {},
                 [](const std::string&) {
                   return std::make_unique<policies::SerialScheduling>();
                 }});
    t.push_back({{"ag", {}, "ag[:recent]",
                  "Adaptive Greedy FIFO queues (sum-of-queued estimator; "
                  ":recent for the Eq. (2) rolling average)",
                  true},
                 "",
                 {"ag:recent"},
                 [](const std::string& arg) {
                   if (arg.empty())
                     return make_ag(policies::AgQueueEstimate::SumOfQueued,
                                    false);
                   if (arg == "recent")
                     return make_ag(policies::AgQueueEstimate::RecentAverage,
                                    false);
                   throw std::invalid_argument(
                       "make_policy: unknown AG variant '" + arg + "'");
                 }});
    t.push_back({{"ag-net", {"agnet"}, "ag-net[:recent]",
                  "Adaptive Greedy with fabric-backlog-aware transfer "
                  "delay (TransferEstimate::total_ms); == AG on ideal "
                  "fabrics",
                  true, true},
                 "",
                 {},
                 [](const std::string& arg) {
                   if (arg.empty())
                     return make_ag(policies::AgQueueEstimate::SumOfQueued,
                                    true);
                   if (arg == "recent")
                     return make_ag(policies::AgQueueEstimate::RecentAverage,
                                    true);
                   throw std::invalid_argument(
                       "make_policy: unknown AG variant '" + arg + "'");
                 }});
    t.push_back({{"olb", {}, "olb", "Opportunistic Load Balancing", true},
                 "",
                 {},
                 [](const std::string&) {
                   return std::make_unique<policies::Olb>();
                 }});
    t.push_back({{"minmin", {"min-min"}, "minmin",
                  "Min-Min batch heuristic (Braun et al.)", true},
                 "",
                 {},
                 [](const std::string&) {
                   return std::make_unique<policies::BatchMode>(
                       policies::BatchRule::MinMin);
                 }});
    t.push_back({{"maxmin", {"max-min"}, "maxmin",
                  "Max-Min batch heuristic (Braun et al.)", true},
                 "",
                 {},
                 [](const std::string&) {
                   return std::make_unique<policies::BatchMode>(
                       policies::BatchRule::MaxMin);
                 }});
    t.push_back({{"sufferage", {}, "sufferage",
                  "Sufferage batch heuristic (Braun et al.)", true},
                 "",
                 {},
                 [](const std::string&) {
                   return std::make_unique<policies::BatchMode>(
                       policies::BatchRule::Sufferage);
                 }});
    t.push_back({{"heft", {}, "heft",
                  "Heterogeneous Earliest Finish Time (static list "
                  "schedule)",
                  false},
                 "",
                 {},
                 [](const std::string&) {
                   return std::make_unique<policies::Heft>();
                 }});
    t.push_back({{"peft", {}, "peft",
                  "Predict Earliest Finish Time (static, OCT table)",
                  false},
                 "",
                 {},
                 [](const std::string&) {
                   return std::make_unique<policies::Peft>();
                 }});
    t.push_back({{"random", {}, "random[:seed]",
                  "Uniform random assignment (seeded; default 42)", true},
                 "seed",
                 {},
                 [](const std::string& arg) {
                   const std::uint64_t seed =
                       arg.empty() ? 42 : util::parse_uint(arg);
                   return std::make_unique<policies::RandomPolicy>(seed);
                 }});
    return t;
  }();
  return table;
}

const Entry* find_entry(const std::string& head) {
  for (const Entry& e : registry()) {
    if (e.info.head == head) return &e;
    for (const std::string& alias : e.info.aliases)
      if (alias == head) return &e;
  }
  return nullptr;
}

/// Classic two-row Levenshtein distance (specs are short; no need for
/// anything cleverer).
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

/// The registered head closest to `head`, when within edit distance 2 —
/// typos, not arbitrary words, get a suggestion.
std::string did_you_mean(const std::string& head) {
  std::string best;
  std::size_t best_dist = 3;
  for (const Entry& e : registry()) {
    const std::size_t d = edit_distance(head, e.info.head);
    if (d < best_dist) {
      best = e.info.head;
      best_dist = d;
    }
    for (const std::string& alias : e.info.aliases) {
      const std::size_t da = edit_distance(head, alias);
      if (da < best_dist) {
        best = e.info.head;  // suggest the canonical form, not the alias
        best_dist = da;
      }
    }
  }
  return best;
}

}  // namespace

const std::vector<PolicyInfo>& policy_registry() {
  static const std::vector<PolicyInfo> infos = [] {
    std::vector<PolicyInfo> v;
    for (const Entry& e : registry()) v.push_back(e.info);
    return v;
  }();
  return infos;
}

const PolicyInfo* find_policy_info(const std::string& spec) {
  std::string head = util::to_lower(util::trim(spec));
  if (const auto colon = head.find(':'); colon != std::string::npos)
    head.resize(colon);
  const Entry* e = find_entry(head);
  return e ? &e->info : nullptr;
}

std::unique_ptr<sim::Policy> make_policy(const std::string& spec) {
  const std::string lowered = util::to_lower(util::trim(spec));
  std::string head = lowered;
  std::string arg;
  if (const auto colon = lowered.find(':'); colon != std::string::npos) {
    head = lowered.substr(0, colon);
    arg = lowered.substr(colon + 1);
  }
  if (const Entry* e = find_entry(head)) return e->make(arg);
  std::string msg = "make_policy: unknown policy spec '" + spec + "'";
  if (const std::string suggestion = did_you_mean(head); !suggestion.empty())
    msg += " (did you mean '" + suggestion + "'?)";
  msg += "; run 'aptsim policies' for the full list";
  throw std::invalid_argument(msg);
}

std::vector<std::string> known_policy_specs() {
  std::vector<std::string> specs;
  for (const Entry& e : registry()) {
    specs.push_back(e.info.head);
    if (!e.param.empty()) specs.push_back(e.info.head + ":<" + e.param + ">");
    for (const std::string& extra : e.advertised) specs.push_back(extra);
  }
  return specs;
}

std::vector<std::string> parse_policy_list(const std::string& csv) {
  std::vector<std::string> specs;
  for (const auto& token : util::split(csv, ',')) {
    const std::string spec = util::trim(token);
    if (spec.empty()) continue;
    // "{seed}" placeholders resolve per cell later (resolve_policy_spec);
    // validate with a stand-in value so "random:{seed}" passes here while
    // a typo'd head still dies with the did-you-mean message.
    std::string probe = spec;
    static const std::string kPlaceholder = "{seed}";
    for (std::size_t at = probe.find(kPlaceholder); at != std::string::npos;
         at = probe.find(kPlaceholder, at)) {
      probe.replace(at, kPlaceholder.size(), "0");
      ++at;
    }
    make_policy(probe);  // throws with did-you-mean on typos
    specs.push_back(spec);
  }
  return specs;
}

std::vector<std::unique_ptr<sim::Policy>> paper_policy_set(double apt_alpha) {
  std::vector<std::unique_ptr<sim::Policy>> set;
  set.push_back(std::make_unique<Apt>(apt_alpha));
  set.push_back(std::make_unique<policies::Met>());
  set.push_back(std::make_unique<policies::Spn>());
  set.push_back(std::make_unique<policies::SerialScheduling>());
  set.push_back(std::make_unique<policies::AdaptiveGreedy>());
  set.push_back(std::make_unique<policies::Heft>());
  set.push_back(std::make_unique<policies::Peft>());
  return set;
}

}  // namespace apt::core
