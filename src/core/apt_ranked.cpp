#include "core/apt_ranked.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <stdexcept>

#include "policies/heft.hpp"
#include "policies/selection.hpp"
#include "util/string_utils.hpp"

namespace apt::core {

AptRanked::AptRanked(double alpha) : alpha_(alpha) {
  if (!(alpha_ >= 1.0))
    throw std::invalid_argument("AptRanked: alpha must be >= 1");
}

std::string AptRanked::name() const {
  return "APT-Ranked(alpha=" + util::format_double(alpha_, 2) + ")";
}

void AptRanked::prepare(const dag::Dag& dag, const sim::System& system,
                        const sim::CostModel& cost) {
  rank_ = policies::heft_upward_ranks(dag, system, cost);
}

void AptRanked::on_event(sim::SchedulerContext& ctx) {
  // Serve the ready set highest-upward-rank first (ties: lower id, which
  // std::stable_sort preserves from the FIFO order).
  std::vector<dag::NodeId> ready = ctx.ready();
  std::stable_sort(ready.begin(), ready.end(),
                   [this](dag::NodeId a, dag::NodeId b) {
                     return rank_.at(a) > rank_.at(b);
                   });
  for (const dag::NodeId node : ready) {
    if (const auto pmin = policies::idle_optimal_proc(ctx, node)) {
      ctx.assign(node, *pmin);
      continue;
    }
    const sim::TimeMs x = policies::min_exec_time_ms(ctx, node);
    const sim::TimeMs threshold = alpha_ * x;
    std::optional<sim::ProcId> alt;
    sim::TimeMs alt_cost = std::numeric_limits<sim::TimeMs>::infinity();
    for (const sim::ProcId proc : ctx.idle_processors()) {
      const sim::TimeMs cost = ctx.exec_time_ms(node, proc) +
                               ctx.transfer_estimate(node, proc).stall_ms;
      if (cost <= threshold && cost < alt_cost) {
        alt = proc;
        alt_cost = cost;
      }
    }
    if (alt) ctx.assign(node, *alt, /*alternative=*/true);
  }
}

}  // namespace apt::core
