#include "core/batch.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/policy_factory.hpp"
#include "lut/paper_data.hpp"
#include "scenario/scenario.hpp"
#include "sim/cost_model.hpp"
#include "sim/precomputed_cost_model.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace apt::core {

ExperimentPlan ExperimentPlan::paper(dag::DfgType type,
                                     std::vector<std::string> policy_specs,
                                     std::vector<double> rates_gbps) {
  ExperimentPlan plan;
  plan.graphs = dag::paper_workload(type);
  plan.policy_specs = std::move(policy_specs);
  plan.rates_gbps = std::move(rates_gbps);
  plan.table = lut::paper_lookup_table();
  return plan;
}

namespace {

/// The one expansion loop behind make_scenario_plan and
/// scenario_graph_labels, so labels can never drift from the graph axis.
/// Calls fn(family, kernels, flat_index) after validating the spec.
template <typename Fn>
void for_each_scenario_graph(const ScenarioSweepSpec& spec, Fn&& fn) {
  if (spec.families.empty())
    throw std::invalid_argument("make_scenario_plan: no families");
  if (spec.graphs_per_family == 0)
    throw std::invalid_argument(
        "make_scenario_plan: graphs_per_family must be >= 1");
  if (spec.kernel_counts.empty())
    throw std::invalid_argument("make_scenario_plan: no kernel counts");
  std::size_t index = 0;
  for (const std::string& name : spec.families) {
    const scenario::ScenarioFamily& family = scenario::family(name);
    for (std::size_t g = 0; g < spec.graphs_per_family; ++g, ++index) {
      const std::size_t kernels =
          std::max(family.min_kernels(),
                   spec.kernel_counts[g % spec.kernel_counts.size()]);
      fn(family, kernels, index);
    }
  }
}

}  // namespace

ExperimentPlan make_scenario_plan(const ScenarioSweepSpec& spec,
                                  std::vector<std::string> policy_specs,
                                  std::vector<double> rates_gbps) {
  ExperimentPlan plan;
  plan.policy_specs = std::move(policy_specs);
  plan.rates_gbps = std::move(rates_gbps);
  spec.topology.validate();
  plan.base_system.topology = spec.topology;
  for (const net::TopologySpec& t : spec.topologies) t.validate();
  plan.topologies = spec.topologies;
  plan.table = spec.synthetic ? lut::synthetic_lookup_table(*spec.synthetic)
                              : lut::paper_lookup_table();
  const dag::KernelPool pool = dag::KernelPool::from_lookup_table(plan.table);

  // Graph seeds come from their own salted stream family so a plan that
  // also uses base_seed-derived policy streams never reuses a seed.
  constexpr std::uint64_t kGraphSeedSalt = 0x5CE9A21C0FFEE123ULL;
  plan.graphs.reserve(spec.families.size() * spec.graphs_per_family);
  for_each_scenario_graph(
      spec, [&](const scenario::ScenarioFamily& family, std::size_t kernels,
                std::size_t index) {
        plan.graphs.push_back(family.generate(
            kernels,
            util::stream_seed(spec.graph_seed ^ kGraphSeedSalt, index), pool));
      });
  return plan;
}

std::vector<std::string> scenario_graph_labels(const ScenarioSweepSpec& spec) {
  std::vector<std::string> labels;
  labels.reserve(spec.families.size() * spec.graphs_per_family);
  for_each_scenario_graph(
      spec, [&](const scenario::ScenarioFamily& family, std::size_t kernels,
                std::size_t) {
        labels.push_back(std::string(family.name()) + "/n" +
                         std::to_string(kernels));
      });
  return labels;
}

std::size_t ExperimentPlan::task_count() const noexcept {
  return topology_count() * replications * rates_gbps.size() * graphs.size() *
         policy_specs.size();
}

BatchTask ExperimentPlan::task(std::size_t flat_index) const {
  // Row-major over (topology, replication, rate, graph, policy), policy
  // fastest — the nesting order of the serial experiment loops, with the
  // topology axis OUTERMOST so single-topology plans keep their historical
  // flat indices (and "{seed}" streams) bit for bit.
  BatchTask t;
  t.index = flat_index;
  t.policy = flat_index % policy_specs.size();
  flat_index /= policy_specs.size();
  t.graph = flat_index % graphs.size();
  flat_index /= graphs.size();
  t.rate = flat_index % rates_gbps.size();
  flat_index /= rates_gbps.size();
  t.replication = flat_index % replications;
  t.topology = flat_index / replications;
  t.seed = util::stream_seed(base_seed, t.index);
  return t;
}

std::vector<std::string> ExperimentPlan::validate() const {
  if (graphs.empty())
    throw std::invalid_argument("ExperimentPlan: no graphs");
  if (policy_specs.empty())
    throw std::invalid_argument("ExperimentPlan: no policy specs");
  if (rates_gbps.empty())
    throw std::invalid_argument("ExperimentPlan: no link rates");
  if (replications == 0)
    throw std::invalid_argument("ExperimentPlan: replications must be >= 1");
  for (const double rate : rates_gbps) {
    if (!(rate > 0.0))
      throw std::invalid_argument("ExperimentPlan: link rate must be > 0");
  }
  for (const net::TopologySpec& t : topologies) t.validate();
  // Fail fast on malformed specs (before any worker is spawned). Column p's
  // first task is (replication 0, rate 0, graph 0, policy p) — flat index p
  // — so seeded specs resolve here exactly as that task will, and the
  // resulting display names are the ones the batch result reports.
  std::vector<std::string> names;
  names.reserve(policy_specs.size());
  for (std::size_t p = 0; p < policy_specs.size(); ++p)
    names.push_back(make_policy(resolve_policy_spec(
                                    policy_specs[p],
                                    util::stream_seed(base_seed, p)))
                        ->name());
  return names;
}

std::string resolve_policy_spec(const std::string& spec, std::uint64_t seed) {
  static const std::string kPlaceholder = "{seed}";
  std::string out = spec;
  for (std::size_t at = out.find(kPlaceholder); at != std::string::npos;
       at = out.find(kPlaceholder, at)) {
    const std::string value = std::to_string(seed);
    out.replace(at, kPlaceholder.size(), value);
    at += value.size();
  }
  return out;
}

const Cell& BatchResult::at(std::size_t topology, std::size_t replication,
                            std::size_t rate, std::size_t graph,
                            std::size_t policy) const {
  if (topology >= topology_count || replication >= replications ||
      rate >= rate_count || graph >= graph_count || policy >= policy_count)
    throw std::out_of_range("BatchResult::at: index outside the result cube");
  return cells[(((topology * replications + replication) * rate_count + rate) *
                    graph_count +
                graph) *
                   policy_count +
               policy];
}

Grid BatchResult::grid(dag::DfgType type, std::size_t rate,
                       std::size_t replication, std::size_t topology) const {
  Grid grid;
  grid.type = type;
  grid.rate_gbps = rates_gbps.at(rate);
  grid.policy_names = policy_names;
  grid.policy_specs = policy_specs;
  grid.cells.resize(graph_count);
  for (std::size_t g = 0; g < graph_count; ++g) {
    grid.cells[g].reserve(policy_count);
    for (std::size_t p = 0; p < policy_count; ++p)
      grid.cells[g].push_back(at(topology, replication, rate, g, p));
  }
  return grid;
}

BatchRunner::BatchRunner(std::size_t jobs)
    : jobs_(jobs == 0 ? util::ThreadPool::default_thread_count() : jobs) {}

BatchRunner::~BatchRunner() = default;

namespace {

/// Shared read-only simulation inputs, built once per plan: one system per
/// (topology, link rate) and one densified cost model per (topology, rate,
/// graph), so the tasks of every policy column and replication reuse the
/// same tables instead of re-densifying them (Engine::run detects the
/// pre-wrapped model and skips its own wrapping pass).
struct SharedInputs {
  std::vector<std::vector<sim::System>> systems;           ///< [topo][rate]
  std::vector<std::vector<sim::LutCostModel>> lut_models;  ///< [topo][rate]
  /// [topo][rate][graph]
  std::vector<std::vector<std::vector<sim::PrecomputedCostModel>>> cost;

  SharedInputs(const ExperimentPlan& plan, const lut::LookupTable& table) {
    const std::size_t topo_count = plan.topology_count();
    systems.resize(topo_count);
    lut_models.resize(topo_count);
    cost.resize(topo_count);
    for (std::size_t t = 0; t < topo_count; ++t) {
      systems[t].reserve(plan.rates_gbps.size());
      lut_models[t].reserve(plan.rates_gbps.size());
      cost[t].reserve(plan.rates_gbps.size());
      for (const double rate : plan.rates_gbps) {
        sim::SystemConfig cfg = plan.base_system;
        cfg.link_rate_gbps = rate;
        cfg.topology = plan.topology_spec(t);
        systems[t].emplace_back(cfg);
        lut_models[t].emplace_back(table, systems[t].back());
      }
      for (std::size_t r = 0; r < plan.rates_gbps.size(); ++r) {
        cost[t].emplace_back();
        cost[t].back().reserve(plan.graphs.size());
        for (const dag::Dag& graph : plan.graphs)
          cost[t].back().emplace_back(graph, systems[t][r], lut_models[t][r]);
      }
    }
  }
};

/// One isolated simulation: own policy instance, shared read-only inputs.
Cell run_single_task(const ExperimentPlan& plan, const SharedInputs& shared,
                     const BatchTask& task) {
  const auto policy = make_policy(
      resolve_policy_spec(plan.policy_specs[task.policy], task.seed));
  return cell_from_outcome(
      run_policy(*policy, plan.graphs[task.graph],
                 shared.systems[task.topology][task.rate],
                 shared.cost[task.topology][task.rate][task.graph]));
}

}  // namespace

BatchResult BatchRunner::run(const ExperimentPlan& plan) const {
  std::vector<std::string> policy_names = plan.validate();
  const lut::LookupTable paper_fallback =
      plan.table.empty() ? lut::paper_lookup_table() : lut::LookupTable();
  const lut::LookupTable& table =
      plan.table.empty() ? paper_fallback : plan.table;

  BatchResult result;
  result.topology_count = plan.topology_count();
  result.replications = plan.replications;
  result.rate_count = plan.rates_gbps.size();
  result.graph_count = plan.graphs.size();
  result.policy_count = plan.policy_specs.size();
  result.policy_specs = plan.policy_specs;
  result.rates_gbps = plan.rates_gbps;
  result.policy_names = std::move(policy_names);
  result.topology_labels.reserve(result.topology_count);
  for (std::size_t t = 0; t < result.topology_count; ++t)
    result.topology_labels.push_back(plan.topology_spec(t).label());

  const SharedInputs shared(plan, table);
  result.cells.resize(plan.task_count());
  // Every task writes only its own pre-sized slot, so any interleaving of
  // workers yields the same cube as the serial loop.
  for_each_index(result.cells.size(), [&](std::size_t i) {
    result.cells[i] = run_single_task(plan, shared, plan.task(i));
  });
  return result;
}

void BatchRunner::for_each_index(
    std::size_t count, const std::function<void(std::size_t)>& body) const {
  if (jobs_ <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  // Sized to jobs_, not min(jobs_, count): the pool is created once and
  // reused for every later call, so sizing it to the first (possibly
  // small) fan-out would cap all subsequent, larger grids.
  if (!pool_) pool_ = std::make_unique<util::ThreadPool>(jobs_);
  pool_->for_each_index(count, body);
}

}  // namespace apt::core
