#include "dag/serialize.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/string_utils.hpp"

namespace apt::dag {

std::string to_text(const Dag& dag) {
  std::string out;
  out += "# apt dataflow graph: " + std::to_string(dag.node_count()) +
         " nodes, " + std::to_string(dag.edge_count()) + " edges\n";
  for (NodeId i = 0; i < dag.node_count(); ++i) {
    const Node& n = dag.node(i);
    out += "node " + std::to_string(i) + " " + n.kernel + " " +
           std::to_string(n.data_size);
    if (n.release_ms > 0.0)
      out += " " + util::format_double(n.release_ms, 6);
    out += "\n";
  }
  for (NodeId i = 0; i < dag.node_count(); ++i) {
    for (const NodeId s : dag.successors(i))
      out += "edge " + std::to_string(i) + " " + std::to_string(s) + "\n";
  }
  return out;
}

Dag from_text(const std::string& text) {
  Dag dag;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto parts = util::split(trimmed, ' ');
    auto bad = [&](const std::string& why) {
      return std::runtime_error("Dag::from_text line " +
                                std::to_string(line_no) + ": " + why);
    };
    if (parts[0] == "node") {
      if (parts.size() != 4 && parts.size() != 5)
        throw bad("expected 'node <id> <kernel> <size> [release_ms]'");
      const auto id = util::parse_uint(parts[1]);
      if (id != dag.node_count())
        throw bad("node ids must be dense and ascending");
      const double release =
          parts.size() == 5 ? util::parse_double(parts[4]) : 0.0;
      dag.add_node(parts[2], util::parse_uint(parts[3]), release);
    } else if (parts[0] == "edge") {
      if (parts.size() != 3) throw bad("expected 'edge <src> <dst>'");
      dag.add_edge(static_cast<NodeId>(util::parse_uint(parts[1])),
                   static_cast<NodeId>(util::parse_uint(parts[2])));
    } else {
      throw bad("unknown directive '" + parts[0] + "'");
    }
  }
  return dag;
}

Dag load_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("Dag::load_text_file: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_text(buf.str());
}

void save_text_file(const Dag& dag, const std::string& path) {
  std::ofstream out(path);
  if (!out)
    throw std::runtime_error("Dag::save_text_file: cannot open '" + path + "'");
  out << to_text(dag);
  if (!out)
    throw std::runtime_error("Dag::save_text_file: write failed: " + path);
}

std::string to_dot(const Dag& dag, const std::string& graph_name) {
  std::string out = "digraph " + graph_name + " {\n";
  out += "  rankdir=TB;\n  node [shape=box];\n";
  for (NodeId i = 0; i < dag.node_count(); ++i) {
    const Node& n = dag.node(i);
    out += "  n" + std::to_string(i) + " [label=\"" + std::to_string(i) + ":" +
           n.kernel + "\\n" + std::to_string(n.data_size) + "\"];\n";
  }
  for (NodeId i = 0; i < dag.node_count(); ++i) {
    for (const NodeId s : dag.successors(i))
      out += "  n" + std::to_string(i) + " -> n" + std::to_string(s) + ";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace apt::dag
