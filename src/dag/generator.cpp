#include "dag/generator.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "lut/paper_data.hpp"
#include "util/rng.hpp"

namespace apt::dag {

const char* to_string(DfgType type) noexcept {
  return type == DfgType::Type1 ? "DFG Type-1" : "DFG Type-2";
}

KernelPool KernelPool::paper_pool() {
  return from_lookup_table(lut::paper_lookup_table());
}

KernelPool KernelPool::from_lookup_table(const lut::LookupTable& table) {
  KernelPool pool;
  for (const std::string& kernel : table.kernels())
    pool.items.push_back({kernel, table.sizes_for(kernel)});
  return pool;
}

std::vector<Node> random_kernel_series(std::size_t n, std::uint64_t seed,
                                       const KernelPool& pool) {
  if (pool.items.empty())
    throw std::invalid_argument("random_kernel_series: empty kernel pool");
  for (const auto& item : pool.items) {
    if (item.sizes.empty())
      throw std::invalid_argument(
          "random_kernel_series: kernel '" + item.kernel + "' has no sizes");
  }
  util::Rng rng(seed);
  std::vector<Node> series;
  series.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& item =
        pool.items[static_cast<std::size_t>(rng.uniform_u64(pool.items.size()))];
    const std::uint64_t size =
        item.sizes[static_cast<std::size_t>(rng.uniform_u64(item.sizes.size()))];
    series.push_back(Node{item.kernel, size});
  }
  return series;
}

Dag make_type1(const std::vector<Node>& series) {
  if (series.size() < 2)
    throw std::invalid_argument("make_type1: need at least 2 kernels");
  Dag dag;
  for (const Node& n : series) dag.add_node(n);
  const NodeId sink = static_cast<NodeId>(series.size() - 1);
  for (NodeId i = 0; i < sink; ++i) dag.add_edge(i, sink);
  return dag;
}

std::array<std::size_t, 3> type2_block_widths(std::size_t n) {
  // Structural overhead: 3 blocks x (top + bottom) = 6, two 1-kernel chains
  // between consecutive blocks, 3 independent singletons, 1 final join.
  constexpr std::size_t kFixed = 6 + 2 + 3 + 1;
  if (n < kFixed + 3)
    throw std::invalid_argument(
        "type2_block_widths: need at least " + std::to_string(kFixed + 3) +
        " kernels");
  const std::size_t mids = n - kFixed;
  std::array<std::size_t, 3> widths{mids / 3, mids / 3, mids / 3};
  for (std::size_t i = 0; i < mids % 3; ++i) ++widths[i];
  return widths;
}

Dag make_type2(const std::vector<Node>& series) {
  const auto widths = type2_block_widths(series.size());
  Dag dag;
  std::size_t next = 0;
  auto take = [&] {
    return dag.add_node(series.at(next++));
  };

  NodeId prev_tail = kInvalidNode;  // bottom of previous block or chain node
  std::array<NodeId, 3> bottoms{};
  for (std::size_t b = 0; b < 3; ++b) {
    if (b > 0) {
      // 1-kernel chain connecting the previous block to this one.
      const NodeId chain = take();
      dag.add_edge(prev_tail, chain);
      prev_tail = chain;
    }
    const NodeId top = take();
    if (prev_tail != kInvalidNode) dag.add_edge(prev_tail, top);
    std::vector<NodeId> mids;
    mids.reserve(widths[b]);
    for (std::size_t i = 0; i < widths[b]; ++i) mids.push_back(take());
    const NodeId bottom = take();
    for (const NodeId mid : mids) {
      dag.add_edge(top, mid);
      dag.add_edge(mid, bottom);
    }
    bottoms[b] = bottom;
    prev_tail = bottom;
  }

  // Independent singletons running alongside the block pipeline.
  std::array<NodeId, 3> singles{};
  for (NodeId& s : singles) s = take();

  // Final join kernel: depends on the last block and every singleton.
  const NodeId join = take();
  dag.add_edge(bottoms[2], join);
  for (const NodeId s : singles) dag.add_edge(s, join);

  if (next != series.size())
    throw std::logic_error("make_type2: internal kernel accounting error");
  return dag;
}

Dag generate(DfgType type, std::size_t n, std::uint64_t seed,
             const KernelPool& pool) {
  const std::vector<Node> series = random_kernel_series(n, seed, pool);
  return type == DfgType::Type1 ? make_type1(series) : make_type2(series);
}

const std::vector<std::size_t>& paper_experiment_sizes() {
  static const std::vector<std::size_t> sizes = {46, 58,  50, 73,  69,
                                                 81, 125, 93, 132, 157};
  return sizes;
}

namespace {
std::uint64_t paper_seed(DfgType type, std::size_t index) {
  return 0xA9700000ULL + static_cast<std::uint64_t>(type) * 1000 + index;
}
}  // namespace

Dag paper_graph(DfgType type, std::size_t experiment_index) {
  const auto& sizes = paper_experiment_sizes();
  if (experiment_index >= sizes.size())
    throw std::out_of_range("paper_graph: experiment index out of range");
  return generate(type, sizes[experiment_index],
                  paper_seed(type, experiment_index), KernelPool::paper_pool());
}

std::vector<Dag> paper_workload(DfgType type) {
  std::vector<Dag> graphs;
  graphs.reserve(paper_experiment_sizes().size());
  for (std::size_t i = 0; i < paper_experiment_sizes().size(); ++i)
    graphs.push_back(paper_graph(type, i));
  return graphs;
}

void apply_poisson_arrivals(Dag& dag, double mean_interarrival_ms,
                            std::uint64_t seed) {
  if (!(mean_interarrival_ms > 0.0))
    throw std::invalid_argument(
        "apply_poisson_arrivals: mean inter-arrival must be positive");
  // Seed contract (shared with stream::ArrivalProcess): the k-th gap is the
  // k-th exponential_interval_ms draw of util::Rng(seed), consumed in
  // ascending entry-node-id order — one uniform per entry, nothing else
  // touches the generator. Same seed, same arrival sequence, everywhere.
  util::Rng rng(seed);
  double clock = 0.0;
  for (const NodeId entry : dag.entry_nodes()) {
    clock += util::exponential_interval_ms(rng, mean_interarrival_ms);
    dag.set_release_ms(entry, clock);
  }
}

Dag random_layered_dag(std::size_t n, std::size_t layers, double edge_prob,
                       std::uint64_t seed, const KernelPool& pool) {
  if (layers == 0 || n < layers)
    throw std::invalid_argument("random_layered_dag: need n >= layers >= 1");
  if (edge_prob < 0.0 || edge_prob > 1.0)
    throw std::invalid_argument("random_layered_dag: edge_prob in [0,1]");
  const std::vector<Node> series = random_kernel_series(n, seed, pool);
  util::Rng rng(seed ^ 0xD1B54A32D192ED03ULL);

  Dag dag;
  for (const Node& node : series) dag.add_node(node);

  // Assign nodes to layers in id order so edges always point forward.
  std::vector<std::vector<NodeId>> by_layer(layers);
  for (NodeId i = 0; i < n; ++i)
    by_layer[static_cast<std::size_t>(i) * layers / n].push_back(i);

  for (std::size_t l = 1; l < layers; ++l) {
    for (const NodeId node : by_layer[l]) {
      // Guarantee connectivity with one mandatory parent from layer l-1.
      const auto& prev = by_layer[l - 1];
      const NodeId parent = prev[static_cast<std::size_t>(
          rng.uniform_u64(prev.size()))];
      dag.add_edge(parent, node);
      // Extra edges from any earlier layer.
      for (std::size_t pl = 0; pl < l; ++pl) {
        for (const NodeId cand : by_layer[pl]) {
          if (cand != parent && !dag.has_edge(cand, node) &&
              rng.bernoulli(edge_prob))
            dag.add_edge(cand, node);
        }
      }
    }
  }
  return dag;
}

Dag make_fork_join(const std::vector<Node>& series, std::uint64_t seed) {
  const std::size_t n = series.size();
  if (n < 2)
    throw std::invalid_argument("make_fork_join: need at least 2 kernels");
  util::Rng rng(seed ^ 0xF02C9A11B3D5E7A1ULL);
  Dag dag;
  std::size_t next = 0;
  auto take = [&] { return dag.add_node(series.at(next++)); };

  NodeId head = take();
  while (next < n) {
    const std::size_t remaining = n - next;
    if (remaining < 3) {
      // Not enough kernels for a 2-wide fork plus a join: extend the chain.
      while (next < n) {
        const NodeId tail = take();
        dag.add_edge(head, tail);
        head = tail;
      }
      break;
    }
    const std::size_t max_width = std::min<std::size_t>(remaining - 1, 8);
    const std::size_t width = 2 + rng.uniform_u64(max_width - 1);  // [2, max]
    std::vector<NodeId> mids;
    mids.reserve(width);
    for (std::size_t i = 0; i < width; ++i) {
      mids.push_back(take());
      dag.add_edge(head, mids.back());
    }
    const NodeId join = take();
    for (const NodeId mid : mids) dag.add_edge(mid, join);
    head = join;
  }
  return dag;
}

namespace {

/// Shared parent-picking machinery of the two tree builders: draws uniformly
/// from the open set and retires a candidate once it reaches `branching`
/// attachments.
class OpenSet {
 public:
  OpenSet(std::size_t node_count, NodeId first, std::size_t branching)
      : branching_(branching), attached_count_(node_count, 0) {
    open_.push_back(first);
  }

  NodeId pick(util::Rng& rng) {
    const std::size_t at = static_cast<std::size_t>(
        rng.uniform_u64(open_.size()));
    const NodeId chosen = open_[at];
    if (++attached_count_[chosen] == branching_) {
      open_[at] = open_.back();
      open_.pop_back();
    }
    return chosen;
  }

  void add(NodeId id) { open_.push_back(id); }

 private:
  std::size_t branching_;
  std::vector<NodeId> open_;
  std::vector<std::size_t> attached_count_;  // indexed by dense NodeId
};

void check_tree_args(const char* what, std::size_t n, std::size_t branching) {
  if (n < 2)
    throw std::invalid_argument(std::string(what) +
                                ": need at least 2 kernels");
  if (branching < 2)
    throw std::invalid_argument(std::string(what) + ": branching must be >= 2");
}

}  // namespace

Dag make_in_tree(const std::vector<Node>& series, std::uint64_t seed,
                 std::size_t branching) {
  const std::size_t n = series.size();
  check_tree_args("make_in_tree", n, branching);
  util::Rng rng(seed ^ 0x1E7EE5A9C3B1D2F5ULL);
  Dag dag;
  for (const Node& node : series) dag.add_node(node);
  // Walk the ids backwards from the root (the last node): every earlier
  // node attaches to one uniformly chosen later node that still has spare
  // fan-in, then becomes a candidate successor itself.
  OpenSet open(n, static_cast<NodeId>(n - 1), branching);
  for (std::size_t i = n - 1; i-- > 0;) {
    dag.add_edge(static_cast<NodeId>(i), open.pick(rng));
    open.add(static_cast<NodeId>(i));
  }
  return dag;
}

Dag make_out_tree(const std::vector<Node>& series, std::uint64_t seed,
                  std::size_t branching) {
  const std::size_t n = series.size();
  check_tree_args("make_out_tree", n, branching);
  util::Rng rng(seed ^ 0x0D7B3E91A5C4F263ULL);
  Dag dag;
  for (const Node& node : series) dag.add_node(node);
  OpenSet open(n, 0, branching);
  for (std::size_t i = 1; i < n; ++i) {
    dag.add_edge(open.pick(rng), static_cast<NodeId>(i));
    open.add(static_cast<NodeId>(i));
  }
  return dag;
}

std::size_t cholesky_task_count(std::size_t tiles) {
  return tiles * (tiles + 1) * (tiles + 2) / 6;
}

std::size_t cholesky_tiles_for(std::size_t n) {
  if (n < cholesky_task_count(2))
    throw std::invalid_argument("make_cholesky: need at least 4 kernels");
  std::size_t tiles = 2;
  while (cholesky_task_count(tiles + 1) <= n) ++tiles;
  return tiles;
}

Dag make_cholesky(const std::vector<Node>& series) {
  const std::size_t n = series.size();
  const std::size_t tiles = cholesky_tiles_for(n);
  Dag dag;
  std::size_t next = 0;
  auto take = [&] { return dag.add_node(series.at(next++)); };
  // Last task that wrote tile (i, j), i >= j, of the lower triangle.
  std::vector<NodeId> writer(tiles * tiles, kInvalidNode);
  auto last_writer = [&](std::size_t i, std::size_t j) -> NodeId& {
    return writer[i * tiles + j];
  };
  auto depend = [&](NodeId from, NodeId to) {
    if (from != kInvalidNode && !dag.has_edge(from, to))
      dag.add_edge(from, to);
  };

  NodeId final_potrf = kInvalidNode;
  for (std::size_t k = 0; k < tiles; ++k) {
    const NodeId potrf = take();  // factorise the diagonal tile (k, k)
    depend(last_writer(k, k), potrf);
    last_writer(k, k) = potrf;
    final_potrf = potrf;
    for (std::size_t i = k + 1; i < tiles; ++i) {
      const NodeId trsm = take();  // solve panel tile (i, k)
      depend(potrf, trsm);
      depend(last_writer(i, k), trsm);
      last_writer(i, k) = trsm;
    }
    for (std::size_t i = k + 1; i < tiles; ++i) {
      for (std::size_t j = k + 1; j <= i; ++j) {
        const NodeId update = take();  // SYRK (j == i) / GEMM on tile (i, j)
        depend(last_writer(i, k), update);
        if (j != i) depend(last_writer(j, k), update);
        depend(last_writer(i, j), update);
        last_writer(i, j) = update;
      }
    }
  }
  // Leftover kernels model post-factorisation work (solves, refinements):
  // independent of each other, gated by the final diagonal factorisation.
  while (next < n) depend(final_potrf, take());
  return dag;
}

}  // namespace apt::dag
