#include "dag/generator.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

#include "lut/paper_data.hpp"
#include "util/rng.hpp"

namespace apt::dag {

const char* to_string(DfgType type) noexcept {
  return type == DfgType::Type1 ? "DFG Type-1" : "DFG Type-2";
}

KernelPool KernelPool::paper_pool() {
  return from_lookup_table(lut::paper_lookup_table());
}

KernelPool KernelPool::from_lookup_table(const lut::LookupTable& table) {
  KernelPool pool;
  for (const std::string& kernel : table.kernels())
    pool.items.push_back({kernel, table.sizes_for(kernel)});
  return pool;
}

std::vector<Node> random_kernel_series(std::size_t n, std::uint64_t seed,
                                       const KernelPool& pool) {
  if (pool.items.empty())
    throw std::invalid_argument("random_kernel_series: empty kernel pool");
  for (const auto& item : pool.items) {
    if (item.sizes.empty())
      throw std::invalid_argument(
          "random_kernel_series: kernel '" + item.kernel + "' has no sizes");
  }
  util::Rng rng(seed);
  std::vector<Node> series;
  series.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& item =
        pool.items[static_cast<std::size_t>(rng.uniform_u64(pool.items.size()))];
    const std::uint64_t size =
        item.sizes[static_cast<std::size_t>(rng.uniform_u64(item.sizes.size()))];
    series.push_back(Node{item.kernel, size});
  }
  return series;
}

Dag make_type1(const std::vector<Node>& series) {
  if (series.size() < 2)
    throw std::invalid_argument("make_type1: need at least 2 kernels");
  Dag dag;
  for (const Node& n : series) dag.add_node(n);
  const NodeId sink = static_cast<NodeId>(series.size() - 1);
  for (NodeId i = 0; i < sink; ++i) dag.add_edge(i, sink);
  return dag;
}

std::array<std::size_t, 3> type2_block_widths(std::size_t n) {
  // Structural overhead: 3 blocks x (top + bottom) = 6, two 1-kernel chains
  // between consecutive blocks, 3 independent singletons, 1 final join.
  constexpr std::size_t kFixed = 6 + 2 + 3 + 1;
  if (n < kFixed + 3)
    throw std::invalid_argument(
        "type2_block_widths: need at least " + std::to_string(kFixed + 3) +
        " kernels");
  const std::size_t mids = n - kFixed;
  std::array<std::size_t, 3> widths{mids / 3, mids / 3, mids / 3};
  for (std::size_t i = 0; i < mids % 3; ++i) ++widths[i];
  return widths;
}

Dag make_type2(const std::vector<Node>& series) {
  const auto widths = type2_block_widths(series.size());
  Dag dag;
  std::size_t next = 0;
  auto take = [&] {
    return dag.add_node(series.at(next++));
  };

  NodeId prev_tail = kInvalidNode;  // bottom of previous block or chain node
  std::array<NodeId, 3> bottoms{};
  for (std::size_t b = 0; b < 3; ++b) {
    if (b > 0) {
      // 1-kernel chain connecting the previous block to this one.
      const NodeId chain = take();
      dag.add_edge(prev_tail, chain);
      prev_tail = chain;
    }
    const NodeId top = take();
    if (prev_tail != kInvalidNode) dag.add_edge(prev_tail, top);
    std::vector<NodeId> mids;
    mids.reserve(widths[b]);
    for (std::size_t i = 0; i < widths[b]; ++i) mids.push_back(take());
    const NodeId bottom = take();
    for (NodeId mid : mids) {
      dag.add_edge(top, mid);
      dag.add_edge(mid, bottom);
    }
    bottoms[b] = bottom;
    prev_tail = bottom;
  }

  // Independent singletons running alongside the block pipeline.
  std::array<NodeId, 3> singles{};
  for (NodeId& s : singles) s = take();

  // Final join kernel: depends on the last block and every singleton.
  const NodeId join = take();
  dag.add_edge(bottoms[2], join);
  for (NodeId s : singles) dag.add_edge(s, join);

  if (next != series.size())
    throw std::logic_error("make_type2: internal kernel accounting error");
  return dag;
}

Dag generate(DfgType type, std::size_t n, std::uint64_t seed,
             const KernelPool& pool) {
  const std::vector<Node> series = random_kernel_series(n, seed, pool);
  return type == DfgType::Type1 ? make_type1(series) : make_type2(series);
}

const std::vector<std::size_t>& paper_experiment_sizes() {
  static const std::vector<std::size_t> sizes = {46, 58,  50, 73,  69,
                                                 81, 125, 93, 132, 157};
  return sizes;
}

namespace {
std::uint64_t paper_seed(DfgType type, std::size_t index) {
  return 0xA9700000ULL + static_cast<std::uint64_t>(type) * 1000 + index;
}
}  // namespace

Dag paper_graph(DfgType type, std::size_t experiment_index) {
  const auto& sizes = paper_experiment_sizes();
  if (experiment_index >= sizes.size())
    throw std::out_of_range("paper_graph: experiment index out of range");
  return generate(type, sizes[experiment_index],
                  paper_seed(type, experiment_index), KernelPool::paper_pool());
}

std::vector<Dag> paper_workload(DfgType type) {
  std::vector<Dag> graphs;
  graphs.reserve(paper_experiment_sizes().size());
  for (std::size_t i = 0; i < paper_experiment_sizes().size(); ++i)
    graphs.push_back(paper_graph(type, i));
  return graphs;
}

void apply_poisson_arrivals(Dag& dag, double mean_interarrival_ms,
                            std::uint64_t seed) {
  if (!(mean_interarrival_ms > 0.0))
    throw std::invalid_argument(
        "apply_poisson_arrivals: mean inter-arrival must be positive");
  util::Rng rng(seed);
  double clock = 0.0;
  for (NodeId entry : dag.entry_nodes()) {
    // Inverse-CDF sampling of Exp(1/mean); uniform01() < 1 keeps log finite.
    clock += -mean_interarrival_ms * std::log(1.0 - rng.uniform01());
    dag.set_release_ms(entry, clock);
  }
}

Dag random_layered_dag(std::size_t n, std::size_t layers, double edge_prob,
                       std::uint64_t seed, const KernelPool& pool) {
  if (layers == 0 || n < layers)
    throw std::invalid_argument("random_layered_dag: need n >= layers >= 1");
  if (edge_prob < 0.0 || edge_prob > 1.0)
    throw std::invalid_argument("random_layered_dag: edge_prob in [0,1]");
  const std::vector<Node> series = random_kernel_series(n, seed, pool);
  util::Rng rng(seed ^ 0xD1B54A32D192ED03ULL);

  Dag dag;
  for (const Node& node : series) dag.add_node(node);

  // Assign nodes to layers in id order so edges always point forward.
  std::vector<std::vector<NodeId>> by_layer(layers);
  for (NodeId i = 0; i < n; ++i)
    by_layer[static_cast<std::size_t>(i) * layers / n].push_back(i);

  for (std::size_t l = 1; l < layers; ++l) {
    for (NodeId node : by_layer[l]) {
      // Guarantee connectivity with one mandatory parent from layer l-1.
      const auto& prev = by_layer[l - 1];
      const NodeId parent = prev[static_cast<std::size_t>(
          rng.uniform_u64(prev.size()))];
      dag.add_edge(parent, node);
      // Extra edges from any earlier layer.
      for (std::size_t pl = 0; pl < l; ++pl) {
        for (NodeId cand : by_layer[pl]) {
          if (cand != parent && !dag.has_edge(cand, node) &&
              rng.bernoulli(edge_prob))
            dag.add_edge(cand, node);
        }
      }
    }
  }
  return dag;
}

}  // namespace apt::dag
