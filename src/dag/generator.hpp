// Workload generation (thesis §3.2).
//
// An input stream of applications is modelled as a DFG of kernels. The
// thesis evaluates two graph families built from a random series of kernels:
//
//  * DFG Type-1 (Figure 3): n−1 kernels with no dependencies ("level-1"),
//    all available in parallel, plus a final n-th kernel that depends on all
//    of them.
//  * DFG Type-2 (Figure 4): dependency-rich — three diamond-shaped "kernel
//    graph blocks" (one kernel on top, several independent kernels in the
//    middle, one at the bottom) connected in sequence by short chains, a few
//    independent singleton kernels alongside, and a final join kernel.
//    Changing the kernel count only changes the blocks' middle widths.
//
// The kernel mix is the paper's seven kernels (Table 5) with data sizes from
// the lookup table; generation is fully deterministic per seed.
#pragma once

#include <cstdint>
#include <vector>

#include "dag/graph.hpp"
#include "lut/lookup_table.hpp"

namespace apt::dag {

/// The two workload families of the thesis.
enum class DfgType { Type1 = 1, Type2 = 2 };

const char* to_string(DfgType type) noexcept;

/// A pool of (kernel, admissible data sizes) the generator samples from.
struct KernelPool {
  struct Item {
    std::string kernel;
    std::vector<std::uint64_t> sizes;
  };
  std::vector<Item> items;

  /// The paper's pool: mm/mi/cd at the seven measured linear-algebra sizes,
  /// nw/bfs/srad/gem at their single measured sizes.
  static KernelPool paper_pool();

  /// Derives a pool from an arbitrary lookup table (every kernel with all
  /// of its measured sizes).
  static KernelPool from_lookup_table(const lut::LookupTable& table);
};

/// Samples a random series of n kernels (uniform kernel, then uniform size).
std::vector<Node> random_kernel_series(std::size_t n, std::uint64_t seed,
                                       const KernelPool& pool);

/// Builds a DFG Type-1 graph from a kernel series (n >= 2): nodes
/// 0..n-2 are independent, node n-1 depends on all of them.
Dag make_type1(const std::vector<Node>& series);

/// Builds a DFG Type-2 graph from a kernel series (n >= 15): three diamond
/// blocks in sequence joined by 1-kernel chains, three independent
/// singletons, and a final join kernel. Node ids follow the structural
/// order (top1, mids1..., bottom1, chain1, top2, ...), which is also the
/// arrival order seen by dynamic policies.
Dag make_type2(const std::vector<Node>& series);

/// Convenience: generate a random series and shape it.
Dag generate(DfgType type, std::size_t n, std::uint64_t seed,
             const KernelPool& pool);

/// Number of middle kernels in each of the three Type-2 blocks for a total
/// kernel count n (exposed for the structure tests).
std::array<std::size_t, 3> type2_block_widths(std::size_t n);

// --- The paper's experiments ------------------------------------------------

/// Kernel counts of the ten experiments (Tables 15/16):
/// {46, 58, 50, 73, 69, 81, 125, 93, 132, 157}.
const std::vector<std::size_t>& paper_experiment_sizes();

/// The i-th (0-based) experiment graph of a family, deterministic across
/// runs and platforms. Throws std::out_of_range for i >= 10.
Dag paper_graph(DfgType type, std::size_t experiment_index);

/// All ten experiment graphs of a family.
std::vector<Dag> paper_workload(DfgType type);

// --- Extra generator for property tests and ablations ------------------------

/// Random layered DAG: `layers` ranks with roughly equal node counts; each
/// node gets an edge from a random node of the previous rank plus extra
/// edges with probability `edge_prob` (0..1). Connected and acyclic.
Dag random_layered_dag(std::size_t n, std::size_t layers, double edge_prob,
                       std::uint64_t seed, const KernelPool& pool);

// --- Generalised scenario shapes (consumed by src/scenario/) ------------------
//
// Like make_type1/make_type2, these shape a pre-sampled kernel series into a
// DAG; node ids follow the structural construction order, which is also the
// arrival order dynamic policies see. All randomness is drawn from a
// dedicated structure RNG salted from `seed`, so the same (series, seed)
// always yields the same graph.

/// Fork–join: an entry kernel forks into a random-width block (2..8) of
/// independent kernels that join into one kernel, which forks again until
/// the series is exhausted (a short tail extends the chain). Requires
/// n >= 2.
Dag make_fork_join(const std::vector<Node>& series, std::uint64_t seed);

/// Random in-tree (reduction): every kernel except the root (the last node)
/// has exactly one successor, drawn uniformly among the later nodes that
/// still have fewer than `branching` predecessors — many entries, one exit
/// (Type-1 is the star special case). Requires n >= 2, branching >= 2.
Dag make_in_tree(const std::vector<Node>& series, std::uint64_t seed,
                 std::size_t branching = 3);

/// Random out-tree (broadcast): the mirror image — one entry (node 0), every
/// other kernel has exactly one predecessor with at most `branching`
/// successors per node. Requires n >= 2, branching >= 2.
Dag make_out_tree(const std::vector<Node>& series, std::uint64_t seed,
                  std::size_t branching = 3);

/// Tasks of a T-tile right-looking tiled Cholesky/LU factorisation:
/// T(T+1)(T+2)/6.
std::size_t cholesky_task_count(std::size_t tiles);

/// Largest tile count whose task count fits into n kernels (n >= 4; throws
/// std::invalid_argument below that).
std::size_t cholesky_tiles_for(std::size_t n);

/// Tiled Cholesky/LU-style task graph: the POTRF/TRSM/SYRK-GEMM dependency
/// structure over the largest tile grid fitting the series; leftover
/// kernels become post-factorisation tasks depending on the final POTRF.
/// Fully structural (no randomness). Requires n >= 4.
Dag make_cholesky(const std::vector<Node>& series);

/// Turns an all-at-time-zero workload into a streaming one: the graph's
/// entry kernels receive exponentially distributed inter-arrival gaps with
/// the given mean (a Poisson arrival process), in ascending node-id order.
/// Non-entry kernels keep release 0 (they are gated by their
/// dependencies). Deterministic per seed; mean must be positive.
///
/// Seed contract: the k-th gap is the k-th util::exponential_interval_ms
/// draw of util::Rng(seed) — one uniform01() per entry node, consumed in
/// ascending entry-id order, nothing else drawn from the generator. This is
/// the same contract stream::ArrivalProcess uses for its Poisson mode, so a
/// seed names one arrival sequence across both the single-graph shaper and
/// the open-system stream engine.
void apply_poisson_arrivals(Dag& dag, double mean_interarrival_ms,
                            std::uint64_t seed);

}  // namespace apt::dag
