#include "dag/graph.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <stdexcept>

#include "lut/lookup_table.hpp"

namespace apt::dag {

NodeId Dag::add_node(std::string kernel, std::uint64_t data_size,
                     double release_ms) {
  if (kernel.empty())
    throw std::invalid_argument("Dag::add_node: empty kernel name");
  if (release_ms < 0.0)
    throw std::invalid_argument("Dag::add_node: negative release time");
  if (nodes_.size() >= static_cast<std::size_t>(kInvalidNode))
    throw std::length_error("Dag::add_node: node limit exceeded");
  nodes_.push_back(
      Node{lut::canonical_kernel_name(kernel), data_size, release_ms});
  succs_.emplace_back();
  preds_.emplace_back();
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Dag::add_node(const Node& node) {
  return add_node(node.kernel, node.data_size, node.release_ms);
}

void Dag::set_release_ms(NodeId id, double release_ms) {
  if (id >= nodes_.size())
    throw std::invalid_argument("Dag::set_release_ms: unknown node id");
  if (release_ms < 0.0)
    throw std::invalid_argument("Dag::set_release_ms: negative release time");
  nodes_[id].release_ms = release_ms;
}

bool Dag::has_edge(NodeId src, NodeId dst) const {
  const auto& succs = succs_.at(src);
  return std::find(succs.begin(), succs.end(), dst) != succs.end();
}

void Dag::add_edge(NodeId src, NodeId dst) {
  if (src >= nodes_.size() || dst >= nodes_.size())
    throw std::invalid_argument("Dag::add_edge: unknown node id");
  if (src == dst) throw std::invalid_argument("Dag::add_edge: self edge");
  if (has_edge(src, dst))
    throw std::invalid_argument("Dag::add_edge: duplicate edge");
  if (creates_cycle(src, dst))
    throw std::logic_error("Dag::add_edge: edge would create a cycle");
  succs_[src].push_back(dst);
  preds_[dst].push_back(src);
  ++edge_count_;
}

bool Dag::creates_cycle(NodeId src, NodeId dst) const {
  // src -> dst creates a cycle iff src is reachable from dst.
  std::vector<NodeId> stack = {dst};
  std::vector<bool> seen(nodes_.size(), false);
  seen[dst] = true;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (n == src) return true;
    for (const NodeId s : succs_[n]) {
      if (!seen[s]) {
        seen[s] = true;
        stack.push_back(s);
      }
    }
  }
  return false;
}

std::vector<NodeId> Dag::entry_nodes() const {
  std::vector<NodeId> out;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (preds_[i].empty()) out.push_back(i);
  }
  return out;
}

std::vector<NodeId> Dag::exit_nodes() const {
  std::vector<NodeId> out;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (succs_[i].empty()) out.push_back(i);
  }
  return out;
}

std::vector<NodeId> Dag::topological_order() const {
  std::vector<std::size_t> indeg(nodes_.size());
  for (NodeId i = 0; i < nodes_.size(); ++i) indeg[i] = preds_[i].size();
  // Min-id-first frontier keeps the order deterministic.
  std::vector<NodeId> frontier = entry_nodes();
  std::make_heap(frontier.begin(), frontier.end(), std::greater<>{});
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  while (!frontier.empty()) {
    std::pop_heap(frontier.begin(), frontier.end(), std::greater<>{});
    const NodeId n = frontier.back();
    frontier.pop_back();
    order.push_back(n);
    for (const NodeId s : succs_[n]) {
      if (--indeg[s] == 0) {
        frontier.push_back(s);
        std::push_heap(frontier.begin(), frontier.end(), std::greater<>{});
      }
    }
  }
  if (order.size() != nodes_.size())
    throw std::logic_error("Dag::topological_order: graph has a cycle");
  return order;
}

std::size_t Dag::depth() const {
  if (nodes_.empty()) return 0;
  std::vector<std::size_t> level(nodes_.size(), 1);
  for (const NodeId n : topological_order()) {
    for (const NodeId s : succs_[n]) level[s] = std::max(level[s], level[n] + 1);
  }
  return *std::max_element(level.begin(), level.end());
}

bool Dag::is_weakly_connected() const {
  if (nodes_.empty()) return true;
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<NodeId> stack = {0};
  seen[0] = true;
  std::size_t visited = 0;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    ++visited;
    auto push = [&](NodeId m) {
      if (!seen[m]) {
        seen[m] = true;
        stack.push_back(m);
      }
    };
    for (const NodeId s : succs_[n]) push(s);
    for (const NodeId p : preds_[n]) push(p);
  }
  return visited == nodes_.size();
}

std::vector<std::pair<std::string, std::size_t>> Dag::kernel_histogram() const {
  std::map<std::string, std::size_t> counts;
  for (const Node& n : nodes_) ++counts[n.kernel];
  return {counts.begin(), counts.end()};
}

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

inline void mix_byte(std::uint64_t& h, unsigned char b) {
  h = (h ^ b) * kFnvPrime;
}

inline void mix_u64(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) mix_byte(h, static_cast<unsigned char>(v >> (8 * i)));
}

}  // namespace

std::uint64_t structure_hash(const Dag& dag) {
  std::uint64_t h = kFnvOffset;
  mix_u64(h, dag.node_count());
  for (NodeId i = 0; i < dag.node_count(); ++i) {
    const Node& n = dag.node(i);
    for (char c : n.kernel) mix_byte(h, static_cast<unsigned char>(c));
    mix_byte(h, 0);  // kernel-name terminator, so "ab"+"c" != "a"+"bc"
    mix_u64(h, n.data_size);
    std::uint64_t release_bits = 0;
    static_assert(sizeof(release_bits) == sizeof(n.release_ms));
    std::memcpy(&release_bits, &n.release_ms, sizeof(release_bits));
    mix_u64(h, release_bits);
  }
  for (NodeId i = 0; i < dag.node_count(); ++i) {
    for (const NodeId s : dag.successors(i)) {
      mix_u64(h, i);
      mix_u64(h, s);
    }
  }
  return h;
}

bool identical(const Dag& a, const Dag& b) {
  if (a.node_count() != b.node_count() || a.edge_count() != b.edge_count())
    return false;
  for (NodeId i = 0; i < a.node_count(); ++i) {
    const Node& na = a.node(i);
    const Node& nb = b.node(i);
    // Bitwise release comparison, matching structure_hash: 0.0 and -0.0
    // compare equal under == but hash (and serialise) differently.
    if (na.kernel != nb.kernel || na.data_size != nb.data_size ||
        std::memcmp(&na.release_ms, &nb.release_ms, sizeof(double)) != 0)
      return false;
    if (a.successors(i) != b.successors(i)) return false;
  }
  return true;
}

}  // namespace apt::dag
