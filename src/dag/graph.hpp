// Kernel dataflow graphs (DFGs).
//
// The scheduling problem is (R | prec | Cmax): a DAG G = (V, E) where V is a
// set of kernels (each with a kernel name and a data size, which together key
// the lookup table) and E is the set of data/precedence dependencies
// (thesis §2.5.1). Node ids are dense indices assigned in insertion order —
// insertion order is also the "arrival order" the dynamic policies see.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace apt::dag {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// One kernel instance in the dataflow graph.
struct Node {
  std::string kernel;       ///< canonical kernel name (lookup-table key)
  std::uint64_t data_size;  ///< problem size in elements (lookup-table key)

  /// Earliest time (ms) the kernel may start — models streaming arrival of
  /// applications. A kernel is ready when its predecessors completed AND
  /// the clock reached its release time. 0 (the default) reproduces the
  /// thesis's everything-submitted-up-front experiments.
  double release_ms = 0.0;
};

/// A directed acyclic dataflow graph of kernels.
///
/// Edges are unweighted; the data transferred along an edge is the
/// producer's output, modelled as `producer.data_size` elements (the cost
/// model converts elements to bytes and bytes to milliseconds).
class Dag {
 public:
  Dag() = default;

  /// Adds a node and returns its id (ids are dense, insertion-ordered).
  /// Throws std::invalid_argument on empty kernel names or negative
  /// release times.
  NodeId add_node(std::string kernel, std::uint64_t data_size,
                  double release_ms = 0.0);
  NodeId add_node(const Node& node);

  /// Sets a node's release time after construction (workload shapers).
  void set_release_ms(NodeId id, double release_ms);

  /// Adds a dependency edge src -> dst.
  /// Throws std::invalid_argument on self-edges, unknown ids, or duplicates.
  /// Throws std::logic_error if the edge would create a cycle.
  void add_edge(NodeId src, NodeId dst);

  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t edge_count() const noexcept { return edge_count_; }
  bool empty() const noexcept { return nodes_.empty(); }

  const Node& node(NodeId id) const { return nodes_.at(id); }
  const std::vector<NodeId>& successors(NodeId id) const { return succs_.at(id); }
  const std::vector<NodeId>& predecessors(NodeId id) const { return preds_.at(id); }

  std::size_t in_degree(NodeId id) const { return preds_.at(id).size(); }
  std::size_t out_degree(NodeId id) const { return succs_.at(id).size(); }
  bool has_edge(NodeId src, NodeId dst) const;

  /// Nodes with no predecessors / successors, ascending by id.
  std::vector<NodeId> entry_nodes() const;
  std::vector<NodeId> exit_nodes() const;

  /// A topological order (Kahn's algorithm, ties broken by ascending id —
  /// deterministic). The graph is acyclic by construction.
  std::vector<NodeId> topological_order() const;

  /// Longest path length counted in *nodes* (levels); 0 for an empty graph.
  std::size_t depth() const;

  /// True when every node can reach (or be reached from) the rest, treating
  /// edges as undirected — a sanity check for generated workloads.
  bool is_weakly_connected() const;

  /// Counts of each kernel name, for workload reporting.
  std::vector<std::pair<std::string, std::size_t>> kernel_histogram() const;

 private:
  bool creates_cycle(NodeId src, NodeId dst) const;

  std::vector<Node> nodes_;
  std::vector<std::vector<NodeId>> succs_;
  std::vector<std::vector<NodeId>> preds_;
  std::size_t edge_count_ = 0;
};

/// Order-sensitive FNV-1a hash of a graph's full structure and labels
/// (kernels, data sizes, release times, edges). Two graphs hash equal iff
/// they serialise identically — the cheap fingerprint the golden regression
/// tests pin generator outputs with.
std::uint64_t structure_hash(const Dag& dag);

/// Exact structural equality: same node count, every node's kernel, data
/// size, and release time (bitwise) equal, and identical successor lists.
/// This is the serialise-identically relation structure_hash fingerprints —
/// the stream engine's shape pool uses it to confirm a hash hit before two
/// instances share one cost table.
bool identical(const Dag& a, const Dag& b);

}  // namespace apt::dag
