// DAG serialisation: a simple line-oriented text format with round-trip
// support, and Graphviz DOT export for visual inspection.
//
// Text format:
//   # comment / blank lines ignored
//   node <id> <kernel> <data_size>
//   edge <src> <dst>
// Node ids must be dense and in ascending order (the insertion order the
// dynamic policies treat as arrival order).
#pragma once

#include <string>

#include "dag/graph.hpp"

namespace apt::dag {

std::string to_text(const Dag& dag);

/// Parses the text format; throws std::runtime_error on malformed input.
Dag from_text(const std::string& text);

Dag load_text_file(const std::string& path);
void save_text_file(const Dag& dag, const std::string& path);

/// Graphviz DOT (digraph) with kernel/data-size labels.
std::string to_dot(const Dag& dag, const std::string& graph_name = "dfg");

}  // namespace apt::dag
