#include "util/string_utils.hpp"

#include <cctype>
#include <cstdio>
#include <stdexcept>

namespace apt::util {

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format_double(double value, int precision) {
  if (precision < 0 || precision > 17)
    throw std::invalid_argument("format_double: precision out of range");
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

double parse_double(const std::string& s) {
  const std::string t = trim(s);
  if (t.empty()) throw std::invalid_argument("parse_double: empty string");
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(t, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("parse_double: not a number: '" + s + "'");
  }
  if (pos != t.size())
    throw std::invalid_argument("parse_double: trailing characters: '" + s + "'");
  return v;
}

std::int64_t parse_int(const std::string& s) {
  const std::string t = trim(s);
  if (t.empty()) throw std::invalid_argument("parse_int: empty string");
  std::size_t pos = 0;
  std::int64_t v = 0;
  try {
    v = std::stoll(t, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("parse_int: not an integer: '" + s + "'");
  }
  if (pos != t.size())
    throw std::invalid_argument("parse_int: trailing characters: '" + s + "'");
  return v;
}

std::uint64_t parse_uint(const std::string& s) {
  const std::string t = trim(s);
  if (t.empty()) throw std::invalid_argument("parse_uint: empty string");
  if (t.front() == '-')
    throw std::invalid_argument("parse_uint: negative value: '" + s + "'");
  std::size_t pos = 0;
  std::uint64_t v = 0;
  try {
    v = std::stoull(t, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("parse_uint: not an integer: '" + s + "'");
  }
  if (pos != t.size())
    throw std::invalid_argument("parse_uint: trailing characters: '" + s + "'");
  return v;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace apt::util
