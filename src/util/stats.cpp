#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace apt::util {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

void RunningStats::reset() noexcept { *this = RunningStats{}; }

double RunningStats::min() const noexcept { return count_ == 0 ? 0.0 : min_; }
double RunningStats::max() const noexcept { return count_ == 0 ? 0.0 : max_; }

double RunningStats::variance() const noexcept {
  return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
}

double RunningStats::sample_variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean_of(const std::vector<double>& xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev_of(const std::vector<double>& xs) noexcept {
  return stddev_about(xs, mean_of(xs));
}

double stddev_about(const std::vector<double>& xs, double mean) noexcept {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (const double x : xs) acc += (x - mean) * (x - mean);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double percentile_sorted(const std::vector<double>& sorted, double pct) {
  if (sorted.empty())
    throw std::invalid_argument("percentile_sorted: empty input");
  if (pct < 0.0 || pct > 100.0)
    throw std::invalid_argument("percentile_sorted: pct must be in [0,100]");
  if (sorted.size() == 1) return sorted.front();
  const double pos = pct / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double percentile_of(std::vector<double> xs, double pct) {
  if (xs.empty()) throw std::invalid_argument("percentile_of: empty input");
  std::sort(xs.begin(), xs.end());
  return percentile_sorted(xs, pct);
}

}  // namespace apt::util
