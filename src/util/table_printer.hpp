// ASCII table rendering for the bench harness ("paper-style" table output).
#pragma once

#include <string>
#include <vector>

namespace apt::util {

/// Column alignment within a printed table.
enum class Align { Left, Right };

/// Builds fixed-width ASCII tables:
///
///   +---------+------+
///   | Graph   |  APT |
///   +---------+------+
///   | 1       | 8298 |
///   +---------+------+
///
/// Cells are strings; numeric formatting is the caller's responsibility
/// (see util::format_double).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header,
                        std::vector<Align> aligns = {});

  void add_row(std::vector<std::string> row);

  /// Inserts a horizontal separator line after the last added row.
  void add_separator();

  std::size_t row_count() const noexcept { return rows_.size(); }

  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

}  // namespace apt::util
