#include "util/table_printer.hpp"

#include <algorithm>
#include <stdexcept>

namespace apt::util {

TablePrinter::TablePrinter(std::vector<std::string> header,
                           std::vector<Align> aligns)
    : header_(std::move(header)), aligns_(std::move(aligns)) {
  if (header_.empty())
    throw std::invalid_argument("TablePrinter: header must be non-empty");
  if (aligns_.empty()) {
    aligns_.assign(header_.size(), Align::Right);
    aligns_.front() = Align::Left;
  }
  if (aligns_.size() != header_.size())
    throw std::invalid_argument("TablePrinter: aligns/header size mismatch");
}

void TablePrinter::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("TablePrinter: row width mismatch");
  rows_.push_back(std::move(row));
}

void TablePrinter::add_separator() { rows_.emplace_back(); }

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    if (row.empty()) continue;
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }

  auto rule = [&] {
    std::string line = "+";
    for (const std::size_t w : widths) line += std::string(w + 2, '-') + "+";
    line += "\n";
    return line;
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = widths[c] - row[c].size();
      line += " ";
      if (aligns_[c] == Align::Right) line += std::string(pad, ' ');
      line += row[c];
      if (aligns_[c] == Align::Left) line += std::string(pad, ' ');
      line += " |";
    }
    line += "\n";
    return line;
  };

  std::string out = rule();
  out += emit_row(header_);
  out += rule();
  for (const auto& row : rows_) {
    out += row.empty() ? rule() : emit_row(row);
  }
  out += rule();
  return out;
}

}  // namespace apt::util
