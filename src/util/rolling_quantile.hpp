// Bounded-memory quantile estimation over a sliding window of observations.
//
// The stream engine's straggler-hedging heuristic needs a running estimate
// of the tail of the realized-execution-time distribution, but an open
// system runs indefinitely — retaining every sample would grow without
// bound. RollingQuantile keeps only the most recent `capacity`
// observations in a ring buffer and answers quantile queries over that
// window, so memory is O(capacity) regardless of run length and the
// estimate tracks non-stationary workloads (old samples age out).
//
// Queries use the project-wide percentile definition
// (util::percentile_sorted — linear interpolation between order
// statistics), so a RollingQuantile over a window that still holds every
// sample agrees exactly with util::percentile_of over the same data.
//
// Complexity: add() is O(1); quantile() sorts the window lazily — O(w log w)
// after a batch of adds, O(1) for repeated queries with no interleaved add.
#pragma once

#include <cstddef>
#include <vector>

namespace apt::util {

class RollingQuantile {
 public:
  /// `capacity` bounds the window (and the memory); raised to >= 1.
  explicit RollingQuantile(std::size_t capacity = 256);

  void add(double x);

  /// Observations currently in the window (<= capacity()).
  std::size_t size() const noexcept { return ring_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  /// Observations ever added (including those that have aged out).
  std::size_t count() const noexcept { return count_; }
  bool empty() const noexcept { return ring_.empty(); }

  /// The q-quantile (q in [0,1]) of the current window, by
  /// util::percentile_sorted. Throws std::invalid_argument when the window
  /// is empty or q lies outside [0,1].
  double quantile(double q) const;

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  ///< next ring slot to overwrite once full
  std::size_t count_ = 0;
  std::vector<double> ring_;
  mutable std::vector<double> sorted_;  ///< lazily rebuilt query scratch
  mutable bool dirty_ = false;
};

}  // namespace apt::util
