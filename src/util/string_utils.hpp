// Small string helpers used across modules (no locale dependence).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace apt::util {

/// Splits on a single-character delimiter; keeps empty segments.
std::vector<std::string> split(const std::string& s, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string trim(const std::string& s);

/// ASCII lower-casing (no locale).
std::string to_lower(const std::string& s);

bool starts_with(const std::string& s, const std::string& prefix);
bool ends_with(const std::string& s, const std::string& suffix);

/// Joins with a separator.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Fixed-precision double formatting ("%.3f" style, no trailing garbage).
std::string format_double(double value, int precision = 3);

/// Escapes a string for embedding in a JSON string literal: quotes,
/// backslashes, and control characters (the one escaper behind every
/// hand-rolled JSON exporter in the tree).
std::string json_escape(const std::string& s);

/// Strict full-string parses; throw std::invalid_argument on failure.
double parse_double(const std::string& s);
std::int64_t parse_int(const std::string& s);
std::uint64_t parse_uint(const std::string& s);

}  // namespace apt::util
