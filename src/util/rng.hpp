// Deterministic pseudo-random number generation for reproducible experiments.
//
// The simulator and workload generators must be bit-for-bit reproducible
// across platforms and standard-library implementations, so we do not use
// std::mt19937 + std::uniform_*_distribution (whose algorithms are not fully
// pinned down by the standard). Instead we implement SplitMix64 (for seeding)
// and xoshiro256** 1.0 (Blackman & Vigna), plus bias-free bounded sampling.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace apt::util {

/// SplitMix64: a tiny, fast generator used to expand a single 64-bit seed
/// into the 256-bit state required by xoshiro256**.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — the project-wide deterministic RNG.
///
/// Satisfies the UniformRandomBitGenerator concept, but prefer the member
/// helpers (uniform_u64, uniform_int, uniform_real, pick, shuffle) which are
/// implementation-pinned and therefore reproducible everywhere.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit seed via SplitMix64.
  explicit constexpr Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept { return next(); }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Unbiased integer in [0, bound) using Lemire-style rejection.
  std::uint64_t uniform_u64(std::uint64_t bound) {
    if (bound == 0) throw std::invalid_argument("Rng::uniform_u64: bound must be > 0");
    // Rejection sampling over the top of the range to remove modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Unbiased integer in the inclusive range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
    const std::uint64_t r = (span == 0) ? next() : uniform_u64(span);
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + r);
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) {
    if (!(lo < hi)) throw std::invalid_argument("Rng::uniform_real: requires lo < hi");
    return lo + (hi - lo) * uniform01();
  }

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    if (items.empty()) throw std::invalid_argument("Rng::pick: empty vector");
    return items[static_cast<std::size_t>(uniform_u64(items.size()))];
  }

  /// Deterministic Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_u64(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Seed of the `stream`-th independent RNG stream derived from one base
/// seed. Adding multiples of SplitMix64's golden-ratio increment to the
/// state is exactly advancing the generator, so stream_seed(base, k) is the
/// k-th output of SplitMix64(base) — the canonical way to expand one seed
/// into many decorrelated ones — computed in O(1) instead of O(k). The
/// batch runner gives every task stream_seed(plan.base_seed, task_index),
/// so results are independent of how tasks are distributed over workers.
inline constexpr std::uint64_t stream_seed(std::uint64_t base_seed,
                                           std::uint64_t stream) noexcept {
  return SplitMix64(base_seed + stream * 0x9e3779b97f4a7c15ULL).next();
}

/// An Rng positioned at the start of the given stream.
inline constexpr Rng stream_rng(std::uint64_t base_seed,
                                std::uint64_t stream) noexcept {
  return Rng(stream_seed(base_seed, stream));
}

/// One exponentially distributed interval with the given mean, by inverse
/// CDF: -mean * log(1 - u) where u is exactly one uniform01() draw.
///
/// This is THE project-wide Poisson-gap sampler — the deterministic seed
/// contract shared by dag::apply_poisson_arrivals and
/// stream::ArrivalProcess: given util::Rng(seed), the k-th arrival gap is
/// the k-th call of this function, so the same seed always produces the
/// same arrival sequence in both the single-graph shaper and the
/// open-system stream engine. uniform01() < 1 keeps the log finite, hence
/// the gap strictly positive.
inline double exponential_interval_ms(Rng& rng, double mean_ms) {
  return -mean_ms * std::log(1.0 - rng.uniform01());
}

}  // namespace apt::util
