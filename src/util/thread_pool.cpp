#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace apt::util {

/// One for_each_index invocation: a shared index counter the workers drain.
struct ThreadPool::Batch {
  std::atomic<std::size_t> next{0};
  std::size_t count = 0;
  const std::function<void(std::size_t)>* body = nullptr;
  std::mutex error_mutex;
  std::exception_ptr first_error;
};

std::size_t ThreadPool::default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_thread_count();
  // The calling thread works too, so spawn one fewer.
  workers_.reserve(threads > 0 ? threads - 1 : 0);
  try {
    for (std::size_t i = 1; i < threads; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  } catch (...) {
    // Thread creation failed partway (e.g. an absurd --jobs under a tight
    // thread limit): shut down the workers that did start, then let the
    // error surface normally instead of std::terminate-ing on a joinable
    // thread's destructor.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : workers_) t.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::drain(Batch& batch) {
  for (;;) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.count) return;
    try {
      (*batch.body)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(batch.error_mutex);
      if (!batch.first_error) batch.first_error = std::current_exception();
    }
  }
}

void ThreadPool::worker_loop() {
  // Each worker joins a given batch generation at most once, so a worker
  // that already drained the current batch blocks until the next one
  // instead of busy-spinning on the still-posted (but exhausted) batch.
  std::uint64_t seen_generation = 0;
  for (;;) {
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] {
        return stop_ || (current_ != nullptr && generation_ != seen_generation);
      });
      if (stop_) return;
      seen_generation = generation_;
      batch = current_;
      ++busy_;
    }
    drain(*batch);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --busy_;
      // The last worker out of a drained batch wakes the submitter.
      if (busy_ == 0) done_.notify_all();
    }
  }
}

void ThreadPool::for_each_index(
    std::size_t count, const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  Batch batch;
  batch.count = count;
  batch.body = &body;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    current_ = &batch;
    ++generation_;
  }
  wake_.notify_all();
  drain(batch);  // the calling thread participates
  {
    std::unique_lock<std::mutex> lock(mutex_);
    current_ = nullptr;  // workers that wake late see no batch
    done_.wait(lock, [this] { return busy_ == 0; });
  }
  if (batch.first_error) std::rethrow_exception(batch.first_error);
}

void parallel_for_index(std::size_t count, std::size_t jobs,
                        const std::function<void(std::size_t)>& body) {
  if (jobs <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  // More threads than indices would only idle: clamp.
  ThreadPool pool(std::min(jobs, count));
  pool.for_each_index(count, body);
}

}  // namespace apt::util
