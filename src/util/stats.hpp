// Small statistics helpers shared by the simulator metrics and benches.
#pragma once

#include <cstddef>
#include <vector>

namespace apt::util {

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long runs; O(1) per observation. `variance()` and
/// `stddev()` report the *population* forms (divide by N), matching Eq. (12)
/// of the paper, with `sample_variance()` available for the N-1 form.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept;

  std::size_t count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }
  double min() const noexcept;
  double max() const noexcept;
  double sum() const noexcept { return sum_; }
  double variance() const noexcept;         // population (1/N)
  double sample_variance() const noexcept;  // 1/(N-1)
  double stddev() const noexcept;           // sqrt of population variance

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean of a vector; 0 for empty input.
double mean_of(const std::vector<double>& xs) noexcept;

/// Population standard deviation of a vector; 0 for fewer than 1 element.
double stddev_of(const std::vector<double>& xs) noexcept;

/// Population standard deviation across an explicit mean (Eq. 12 form).
double stddev_about(const std::vector<double>& xs, double mean) noexcept;

/// Linear-interpolated percentile in [0,100]; throws on empty input.
double percentile_of(std::vector<double> xs, double pct);

}  // namespace apt::util
