// Small statistics helpers shared by the simulator metrics and benches.
#pragma once

#include <cstddef>
#include <vector>

namespace apt::util {

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long runs; O(1) per observation. `variance()` and
/// `stddev()` report the *population* forms (divide by N), matching Eq. (12)
/// of the paper, with `sample_variance()` available for the N-1 form.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept;

  std::size_t count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }
  double min() const noexcept;
  double max() const noexcept;
  double sum() const noexcept { return sum_; }
  double variance() const noexcept;         // population (1/N)
  double sample_variance() const noexcept;  // 1/(N-1)
  double stddev() const noexcept;           // sqrt of population variance

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean of a vector; 0 for empty input.
double mean_of(const std::vector<double>& xs) noexcept;

/// Population standard deviation of a vector; 0 for fewer than 1 element.
double stddev_of(const std::vector<double>& xs) noexcept;

/// Population standard deviation across an explicit mean (Eq. 12 form).
double stddev_about(const std::vector<double>& xs, double mean) noexcept;

/// THE project-wide percentile definition, over an ALREADY-SORTED,
/// non-empty range: linear interpolation between the order statistics at
/// positions floor(q) and ceil(q) of q = pct/100 * (n-1) (the "linear"
/// a.k.a. type-7 estimator of Hyndman & Fan, numpy's default). Every
/// percentile the project reports — util::percentile_of,
/// sim::DistSummary::summarize's p50/p95/p99, util::RollingQuantile —
/// routes through this one function, so percentiles computed by different
/// subsystems over the same data always agree. Throws on empty input or
/// pct outside [0,100].
double percentile_sorted(const std::vector<double>& sorted, double pct);

/// Linear-interpolated percentile in [0,100]; throws on empty input.
/// Convenience wrapper: sorts a copy, then applies percentile_sorted.
double percentile_of(std::vector<double> xs, double pct);

}  // namespace apt::util
