#include "util/logging.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <stdexcept>

namespace apt::util {

const char* to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

LogLevel parse_log_level(const std::string& token) {
  std::string t = token;
  std::transform(t.begin(), t.end(), t.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (t == "debug") return LogLevel::Debug;
  if (t == "info") return LogLevel::Info;
  if (t == "warn" || t == "warning") return LogLevel::Warn;
  if (t == "error") return LogLevel::Error;
  if (t == "off" || t == "none") return LogLevel::Off;
  throw std::invalid_argument("unknown log level '" + token +
                              "' (expected debug, info, warn, error, or off)");
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  sink_ = [](LogLevel level, const std::string& message) {
    std::fprintf(stderr, "[%s] %s\n", to_string(level), message.c_str());
  };
}

void Logger::set_sink(Sink sink) {
  if (sink) {
    sink_ = std::move(sink);
  } else {
    sink_ = [](LogLevel level, const std::string& message) {
      std::fprintf(stderr, "[%s] %s\n", to_string(level), message.c_str());
    };
  }
}

void Logger::log(LogLevel level, const std::string& message) {
  if (!enabled(level)) return;
  sink_(level, message);
}

}  // namespace apt::util
