#include "util/logging.hpp"

#include <cstdio>

namespace apt::util {

const char* to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  sink_ = [](LogLevel level, const std::string& message) {
    std::fprintf(stderr, "[%s] %s\n", to_string(level), message.c_str());
  };
}

void Logger::set_sink(Sink sink) {
  if (sink) {
    sink_ = std::move(sink);
  } else {
    sink_ = [](LogLevel level, const std::string& message) {
      std::fprintf(stderr, "[%s] %s\n", to_string(level), message.c_str());
    };
  }
}

void Logger::log(LogLevel level, const std::string& message) {
  if (!enabled(level)) return;
  sink_(level, message);
}

}  // namespace apt::util
