#include "util/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace apt::util {

std::size_t CsvTable::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return i;
  }
  throw std::out_of_range("CsvTable: no column named '" + name + "'");
}

const std::string& CsvTable::cell(std::size_t row,
                                  const std::string& column) const {
  return rows_.at(row).at(column_index(column));
}

namespace {

// State machine parse of the full document; handles quoted fields with
// embedded separators, escaped quotes, and both \n and \r\n line endings.
std::vector<CsvRow> parse_rows(const std::string& text) {
  std::vector<CsvRow> rows;
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty())
          throw std::runtime_error("parse_csv: quote inside unquoted field");
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        break;
      case '\r':
        break;  // swallowed; the following \n ends the row
      case '\n':
        end_row();
        break;
      default:
        field.push_back(c);
        field_started = true;
        break;
    }
  }
  if (in_quotes) throw std::runtime_error("parse_csv: unterminated quote");
  if (!field.empty() || field_started || !row.empty()) end_row();
  return rows;
}

}  // namespace

CsvTable parse_csv(const std::string& text, bool has_header) {
  auto rows = parse_rows(text);
  CsvTable table;
  std::size_t first = 0;
  if (has_header && !rows.empty()) {
    table.set_header(std::move(rows.front()));
    first = 1;
  }
  for (std::size_t i = first; i < rows.size(); ++i)
    table.add_row(std::move(rows[i]));
  return table;
}

CsvTable read_csv_file(const std::string& path, bool has_header) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_csv_file: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_csv(buf.str(), has_header);
}

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

namespace {
void append_row(std::string& out, const CsvRow& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i != 0) out.push_back(',');
    out += csv_escape(row[i]);
  }
  out.push_back('\n');
}
}  // namespace

std::string to_csv_string(const CsvTable& table) {
  std::string out;
  if (!table.header().empty()) append_row(out, table.header());
  for (const auto& row : table.rows()) append_row(out, row);
  return out;
}

void write_csv_file(const CsvTable& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out)
    throw std::runtime_error("write_csv_file: cannot open '" + path + "'");
  out << to_csv_string(table);
  if (!out) throw std::runtime_error("write_csv_file: write failed: " + path);
}

}  // namespace apt::util
