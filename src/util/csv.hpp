// Minimal CSV reading/writing used by the lookup table and the bench harness.
//
// Supports RFC-4180-style quoting ("" escapes, embedded commas/newlines) on
// read and quotes on write only when needed. No external dependencies.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace apt::util {

using CsvRow = std::vector<std::string>;

/// An in-memory CSV document: optional header row plus data rows.
class CsvTable {
 public:
  CsvTable() = default;
  explicit CsvTable(CsvRow header) : header_(std::move(header)) {}

  const CsvRow& header() const noexcept { return header_; }
  void set_header(CsvRow header) { header_ = std::move(header); }

  const std::vector<CsvRow>& rows() const noexcept { return rows_; }
  std::size_t row_count() const noexcept { return rows_.size(); }
  const CsvRow& row(std::size_t i) const { return rows_.at(i); }

  void add_row(CsvRow row) { rows_.push_back(std::move(row)); }

  /// Index of a header column; throws std::out_of_range if absent.
  std::size_t column_index(const std::string& name) const;

  /// Cell by row index + header name; throws if either is out of range.
  const std::string& cell(std::size_t row, const std::string& column) const;

 private:
  CsvRow header_;
  std::vector<CsvRow> rows_;
};

/// Parses a full CSV document; first row becomes the header when
/// `has_header` is true. Throws std::runtime_error on malformed quoting.
CsvTable parse_csv(const std::string& text, bool has_header = true);

/// Reads and parses a CSV file; throws std::runtime_error if unreadable.
CsvTable read_csv_file(const std::string& path, bool has_header = true);

/// Serialises with RFC-4180 quoting; header first when present.
std::string to_csv_string(const CsvTable& table);

/// Writes to a file; throws std::runtime_error on I/O failure.
void write_csv_file(const CsvTable& table, const std::string& path);

/// Quotes a single field if it contains a comma, quote, or newline.
std::string csv_escape(const std::string& field);

}  // namespace apt::util
