// A small fixed-size worker pool for fanning independent tasks across
// cores.
//
// The batch experiment runner launches thousands of mutually independent
// simulations; each writes into its own pre-allocated result slot, so the
// pool only needs one primitive: run `body(i)` for every index of a range
// and block until all of them finished. Exceptions thrown by the body are
// captured and the first one is rethrown on the calling thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace apt::util {

class ThreadPool {
 public:
  /// Starts `threads` workers; 0 means one per hardware thread.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size() + 1; }

  /// Runs body(0) .. body(count-1), distributing indices over the workers
  /// (the calling thread participates), and returns when all are done.
  /// Rethrows the first exception any body raised. Indices are claimed in
  /// order but may complete in any order — bodies must be independent.
  void for_each_index(std::size_t count,
                      const std::function<void(std::size_t)>& body);

  /// std::thread::hardware_concurrency with a floor of 1.
  static std::size_t default_thread_count();

 private:
  struct Batch;

  void worker_loop();
  static void drain(Batch& batch);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  Batch* current_ = nullptr;  ///< the in-flight batch, guarded by mutex_
  std::uint64_t generation_ = 0;  ///< batch counter; workers join each once
  std::size_t busy_ = 0;      ///< workers still inside the current batch
  bool stop_ = false;
};

/// One-shot convenience: runs body(0..count-1) on `jobs` threads (<=1 runs
/// inline on the caller, without spawning anything).
void parallel_for_index(std::size_t count, std::size_t jobs,
                        const std::function<void(std::size_t)>& body);

}  // namespace apt::util
