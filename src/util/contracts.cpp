#include "util/contracts.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace apt::util::detail {

// The assertion reporter writes straight to stderr (not util::logging):
// it must work even when the failure is inside the logging sink, and the
// process aborts immediately after, so sink redirection is moot.
[[noreturn]] void assert_fail(const char* file, int line, const char* cond,
                              const char* fmt, ...) {
  std::fprintf(stderr, "%s:%d: assertion `%s` failed: ", file, line, cond);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace apt::util::detail
