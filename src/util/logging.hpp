// Lightweight leveled logging with a swappable sink (silent by default in
// tests, stderr in tools). Not thread-safe by design: the simulator is
// single-threaded and benches log from one thread.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace apt::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

const char* to_string(LogLevel level) noexcept;

/// Parses a CLI token ("debug", "info", "warn", "error", "off"; case
/// insensitive). Throws std::invalid_argument naming the valid levels.
LogLevel parse_log_level(const std::string& token);

/// Global logger configuration.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  LogLevel level() const noexcept { return level_; }

  /// Replaces the sink; pass nullptr to restore the default stderr sink.
  void set_sink(Sink sink);

  bool enabled(LogLevel level) const noexcept { return level >= level_; }
  void log(LogLevel level, const std::string& message);

 private:
  Logger();
  LogLevel level_ = LogLevel::Warn;
  Sink sink_;
};

namespace detail {
/// Stream-style one-shot message builder used by the APT_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::instance().log(level_, stream_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace apt::util

#define APT_LOG(level)                                       \
  if (!::apt::util::Logger::instance().enabled(level)) {     \
  } else                                                     \
    ::apt::util::detail::LogMessage(level)

#define APT_LOG_DEBUG APT_LOG(::apt::util::LogLevel::Debug)
#define APT_LOG_INFO APT_LOG(::apt::util::LogLevel::Info)
#define APT_LOG_WARN APT_LOG(::apt::util::LogLevel::Warn)
#define APT_LOG_ERROR APT_LOG(::apt::util::LogLevel::Error)
