// Project-wide invariant assertions with formatted context.
//
// APT_ASSERT(cond, fmt, ...) is the determinism-critical replacement for
// bare <cassert> assert(): on failure it reports file:line, the failed
// condition text, and a printf-formatted context message (the slot, rate,
// node id, ... that makes the report actionable) before aborting. Like
// assert(), it is NDEBUG-gated — Release builds compile it away entirely,
// so it must only guard *internal* invariants whose violation is an engine
// bug, never user-input validation (those stay as thrown exceptions so the
// tested error paths survive in Release).
#pragma once

#include <cstdarg>

namespace apt::util::detail {

/// Prints "file:line: assertion `cond` failed: <formatted message>" to
/// stderr and aborts. Out-of-line so the macro expansion stays small.
[[noreturn]] void assert_fail(const char* file, int line, const char* cond,
                              const char* fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 4, 5)))
#endif
    ;

}  // namespace apt::util::detail

#ifdef NDEBUG
#define APT_ASSERT(cond, ...) ((void)0)
#else
#define APT_ASSERT(cond, ...)                                         \
  ((cond) ? (void)0                                                   \
          : ::apt::util::detail::assert_fail(__FILE__, __LINE__, #cond, \
                                             __VA_ARGS__))
#endif
