#include "util/rolling_quantile.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/stats.hpp"

namespace apt::util {

RollingQuantile::RollingQuantile(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  ring_.reserve(capacity_);
}

void RollingQuantile::add(double x) {
  if (ring_.size() < capacity_) {
    ring_.push_back(x);
  } else {
    ring_[head_] = x;
    head_ = (head_ + 1) % capacity_;
  }
  ++count_;
  dirty_ = true;
}

double RollingQuantile::quantile(double q) const {
  if (ring_.empty())
    throw std::invalid_argument("RollingQuantile::quantile: no observations");
  if (q < 0.0 || q > 1.0)
    throw std::invalid_argument(
        "RollingQuantile::quantile: q must be in [0,1]");
  if (dirty_) {
    sorted_ = ring_;
    std::sort(sorted_.begin(), sorted_.end());
    dirty_ = false;
  }
  return percentile_sorted(sorted_, q * 100.0);
}

}  // namespace apt::util
