// Timeline tracing: a TraceSink interface both engines feed, plus a
// ChromeTraceWriter that renders the feed as Chrome trace-event JSON
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Inertness contract (mirrors obs/profile.hpp): engines hold a
// `TraceSink*` that is null by default and guard every emission with a
// null check. Sinks only *read* completed simulation facts — spans are
// emitted at completion/delivery/cancellation instants when every field
// is final, so no open-span state lives in the engines, and attaching a
// sink cannot perturb event order, RNG streams, or any simulated bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "dag/graph.hpp"
#include "net/topology.hpp"
#include "sim/system.hpp"

namespace apt::obs {

/// How a kernel span relates to straggler hedging.
enum class SpanRole : std::uint8_t {
  kSolo,          ///< no hedge episode for this kernel
  kHedgePrimary,  ///< the original attempt of a hedged kernel
  kHedgeReplica,  ///< the raced replica of a hedged kernel
};

/// One processor-occupancy span: [occupied_from, finish) on `proc`, where
/// [occupied_from, exec_start) is the input-transfer stall. Losing hedge
/// attempts arrive with cancelled == true and finish == the cancellation
/// instant.
struct KernelSpan {
  std::uint64_t instance = 0;  ///< stream app index; 0 in closed runs
  dag::NodeId node = dag::kInvalidNode;
  const char* kernel = "";  ///< kernel name; valid for the call only
  sim::ProcId proc = sim::kInvalidProc;
  sim::TimeMs occupied_from = 0.0;
  sim::TimeMs exec_start = 0.0;
  sim::TimeMs finish = 0.0;
  double noise_mult = 1.0;
  bool alternative = false;
  SpanRole role = SpanRole::kSolo;
  bool cancelled = false;  ///< losing hedge attempt, span ends at cancel
};

/// One link message: occupies every route link during [drain_start,
/// finish). `path` points into engine state and is valid for the call
/// only — sinks that buffer must copy.
struct TransferSpan {
  std::uint64_t instance = 0;
  dag::NodeId src = dag::kInvalidNode;
  dag::NodeId dst = dag::kInvalidNode;
  sim::ProcId from = sim::kInvalidProc;
  sim::ProcId to = sim::kInvalidProc;
  const net::LinkId* path = nullptr;
  std::size_t hops = 0;
  double bytes = 0.0;
  sim::TimeMs start = 0.0;
  sim::TimeMs drain_start = 0.0;
  sim::TimeMs finish = 0.0;
};

/// Zero-duration markers on the policy/lifecycle track.
enum class InstantKind : std::uint8_t {
  kArrival,      ///< stream instance admitted
  kDecision,     ///< policy committed node -> proc (detail: assign/enqueue)
  kHedgeLaunch,  ///< replica raced against a straggling primary
  kRetirement,   ///< stream instance fully completed
};

struct InstantEvent {
  InstantKind kind = InstantKind::kDecision;
  std::uint64_t instance = 0;
  dag::NodeId node = dag::kInvalidNode;  ///< kInvalidNode when app-level
  sim::ProcId proc = sim::kInvalidProc;  ///< kInvalidProc when app-level
  sim::TimeMs time = 0.0;
  const char* detail = "";  ///< e.g. "assign" / "enqueue"; call-scoped
};

/// Consumer of engine timeline events. Implementations must not mutate
/// simulation state; the engines call these mid-run.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void kernel_span(const KernelSpan& span) = 0;
  virtual void transfer_span(const TransferSpan& span) = 0;
  virtual void instant(const InstantEvent& event) = 0;
};

/// Renders the feed as Chrome trace-event JSON ("traceEvents" array of
/// "X"/"i"/"M" events, timestamps in microseconds of simulated time).
/// Track layout:
///   pid 1 "processors" — one thread per processor (kernel spans)
///   pid 2 "links"      — one thread per topology link (transfer spans;
///                        multi-hop messages draw one span per route link)
///   pid 3 "events"     — arrivals / decisions / hedge-launches /
///                        retirements, one thread per kind
/// Every event is rendered to its JSON string at emission (the spans'
/// pointer fields are call-scoped), so the writer is deterministic given
/// the same simulated run — it never reads wall clocks.
class ChromeTraceWriter final : public TraceSink {
 public:
  struct Options {
    /// Hard cap on buffered events; further spans/instants are dropped
    /// (metadata events are always kept). Guards memory on long runs.
    std::size_t max_events = 1u << 20;
    /// Decimation: keep every k-th event per category (1 = keep all).
    std::size_t every = 1;
  };

  explicit ChromeTraceWriter(const sim::System& system);
  ChromeTraceWriter(const sim::System& system, Options options);

  void kernel_span(const KernelSpan& span) override;
  void transfer_span(const TransferSpan& span) override;
  void instant(const InstantEvent& event) override;

  std::size_t event_count() const noexcept { return events_.size(); }
  /// Events discarded by the cap or the decimation knob.
  std::size_t dropped() const noexcept { return dropped_; }

  /// Writes the complete trace JSON ({"traceEvents": [...]}).
  void write(std::ostream& out) const;
  /// write() to `path`; throws std::runtime_error when unwritable.
  void write_file(const std::string& path) const;

 private:
  bool admit(std::size_t& seen);
  void push(std::string json);

  Options options_;
  std::vector<std::string> meta_;    ///< process/thread name events
  std::vector<std::string> events_;  ///< rendered span/instant events
  std::vector<std::string> proc_names_;
  std::vector<std::string> link_names_;
  std::vector<double> link_gbps_;
  std::size_t seen_spans_ = 0;
  std::size_t seen_transfers_ = 0;
  std::size_t seen_instants_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace apt::obs
