#include "obs/profile.hpp"

namespace apt::obs {

const char* to_string(Counter counter) noexcept {
  switch (counter) {
    case Counter::kPolicyPasses:
      return "policy_passes";
    case Counter::kPolicyDecisions:
      return "policy_decisions";
    case Counter::kReadyMarked:
      return "ready_marked";
    case Counter::kReadyCompactions:
      return "ready_compactions";
    case Counter::kEventsProcessed:
      return "events_processed";
    case Counter::kHedgeChecks:
      return "hedge_checks";
    case Counter::kTransfersStarted:
      return "transfers_started";
    case Counter::kArrivals:
      return "arrivals";
    case Counter::kRetirements:
      return "retirements";
    case Counter::kCount:
      break;
  }
  return "unknown";
}

const char* to_string(Timer timer) noexcept {
  switch (timer) {
    case Timer::kPolicyPass:
      return "policy_pass";
    case Timer::kEventLoopAdvance:
      return "event_loop_advance";
    case Timer::kDrainQueues:
      return "drain_queues";
    case Timer::kTmSolveFull:
      return "tm_solve_full";
    case Timer::kTmSolveIncremental:
      return "tm_solve_incremental";
    case Timer::kCount:
      break;
  }
  return "unknown";
}

ProfileSnapshot Profile::snapshot() const {
  ProfileSnapshot snap;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    snap.counters.push_back(
        {to_string(static_cast<Counter>(i)), counts_[i]});
  }
  for (std::size_t i = 0; i < timers_.size(); ++i) {
    const TimerCell& cell = timers_[i];
    if (cell.count == 0) continue;
    snap.timers.push_back({to_string(static_cast<Timer>(i)), cell.count,
                           cell.total_ms, cell.max_ms});
  }
  return snap;
}

}  // namespace apt::obs
