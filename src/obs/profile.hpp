// Allocation-free hot-path profiling: fixed enum-indexed counters and
// scoped wall-clock timers the engines stamp while simulating.
//
// Design constraints, in order:
//   1. Provably inert. An engine holds a `Profile*` that is null by
//      default; every instrumentation site is a null check. ScopedTimer
//      does not even read the clock when the profile is null, and nothing
//      here touches simulation state or RNG streams — enabling profiling
//      cannot change a single simulated bit.
//   2. Allocation-free on the hot path. Counters and timers live in
//      fixed std::arrays indexed by enum; add()/record() are a few loads
//      and stores. Allocation happens only in snapshot(), after the run.
//   3. Layering-neutral. This header is pure std (no dag/sim/net
//      includes), so net::TransferManager and sim::StreamMetrics can both
//      carry it without dependency cycles.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace apt::obs {

/// Monotonic event counters of one simulation run.
enum class Counter : std::size_t {
  kPolicyPasses,      ///< policy.on_event invocations
  kPolicyDecisions,   ///< assign() + enqueue() commitments
  kReadyMarked,       ///< kernels entering the ready set
  kReadyCompactions,  ///< tombstone compactions of the ready set
  kEventsProcessed,   ///< popped event-queue entries (all kinds)
  kHedgeChecks,       ///< hedge-check events processed
  kTransfersStarted,  ///< fabric messages created
  kArrivals,          ///< stream admissions
  kRetirements,       ///< stream retirements
  kCount
};

/// Scoped wall-clock timers of one simulation run.
enum class Timer : std::size_t {
  kPolicyPass,         ///< one policy.on_event call
  kEventLoopAdvance,   ///< one advance_to_next_event pass
  kDrainQueues,        ///< one queue-head drain pass
  kTmSolveFull,        ///< TransferManager full max-min re-solve
  kTmSolveIncremental, ///< TransferManager incremental component re-solve
  kCount
};

const char* to_string(Counter counter) noexcept;
const char* to_string(Timer timer) noexcept;

/// Post-run copy of a Profile, safe to store in metrics/results after the
/// engine (and the Profile it wrote) are gone. Entries with zero counts
/// are omitted so exporters stay compact.
struct ProfileSnapshot {
  struct CounterEntry {
    std::string name;
    std::uint64_t count = 0;
  };
  struct TimerEntry {
    std::string name;
    std::uint64_t count = 0;
    double total_ms = 0.0;
    double max_ms = 0.0;
  };
  std::vector<CounterEntry> counters;
  std::vector<TimerEntry> timers;

  bool empty() const noexcept { return counters.empty() && timers.empty(); }
};

class Profile {
 public:
  void add(Counter counter, std::uint64_t n = 1) noexcept {
    counts_[static_cast<std::size_t>(counter)] += n;
  }

  void record(Timer timer, double elapsed_ms) noexcept {
    TimerCell& cell = timers_[static_cast<std::size_t>(timer)];
    ++cell.count;
    cell.total_ms += elapsed_ms;
    if (elapsed_ms > cell.max_ms) cell.max_ms = elapsed_ms;
  }

  std::uint64_t count(Counter counter) const noexcept {
    return counts_[static_cast<std::size_t>(counter)];
  }
  std::uint64_t timer_count(Timer timer) const noexcept {
    return timers_[static_cast<std::size_t>(timer)].count;
  }
  double timer_total_ms(Timer timer) const noexcept {
    return timers_[static_cast<std::size_t>(timer)].total_ms;
  }
  double timer_max_ms(Timer timer) const noexcept {
    return timers_[static_cast<std::size_t>(timer)].max_ms;
  }

  /// Copies the non-zero entries out (the only allocating operation).
  ProfileSnapshot snapshot() const;

 private:
  struct TimerCell {
    std::uint64_t count = 0;
    double total_ms = 0.0;
    double max_ms = 0.0;
  };

  std::array<std::uint64_t, static_cast<std::size_t>(Counter::kCount)>
      counts_{};
  std::array<TimerCell, static_cast<std::size_t>(Timer::kCount)> timers_{};
};

/// RAII timer: stamps `timer` on the given profile at scope exit. A null
/// profile makes construction and destruction free — the clock is never
/// read, so the disabled path costs one branch.
class ScopedTimer {
 public:
  ScopedTimer(Profile* profile, Timer timer) noexcept
      : profile_(profile), timer_(timer) {
    if (profile_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (!profile_) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    profile_->record(
        timer_,
        std::chrono::duration<double, std::milli>(elapsed).count());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Profile* profile_;
  Timer timer_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace apt::obs
