#include "obs/trace_sink.hpp"

#include <fstream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "util/string_utils.hpp"

namespace apt::obs {
namespace {

// Chrome trace-event pids: one synthetic "process" per track group.
constexpr int kPidProcessors = 1;
constexpr int kPidLinks = 2;
constexpr int kPidEvents = 3;

// pid 3 thread ids, one lifecycle lane per instant kind.
constexpr int kTidArrivals = 0;
constexpr int kTidDecisions = 1;
constexpr int kTidHedges = 2;
constexpr int kTidRetirements = 3;

// Trace-event timestamps are microseconds; simulation times are ms.
std::string us(sim::TimeMs ms) { return util::format_double(ms * 1000.0, 3); }

std::string quoted(const std::string& s) {
  return "\"" + util::json_escape(s) + "\"";
}

const char* role_name(SpanRole role) {
  switch (role) {
    case SpanRole::kSolo:
      return "solo";
    case SpanRole::kHedgePrimary:
      return "primary";
    case SpanRole::kHedgeReplica:
      return "replica";
  }
  return "solo";
}

const char* instant_name(InstantKind kind) {
  switch (kind) {
    case InstantKind::kArrival:
      return "arrival";
    case InstantKind::kDecision:
      return "decision";
    case InstantKind::kHedgeLaunch:
      return "hedge_launch";
    case InstantKind::kRetirement:
      return "retirement";
  }
  return "instant";
}

int instant_tid(InstantKind kind) {
  switch (kind) {
    case InstantKind::kArrival:
      return kTidArrivals;
    case InstantKind::kDecision:
      return kTidDecisions;
    case InstantKind::kHedgeLaunch:
      return kTidHedges;
    case InstantKind::kRetirement:
      return kTidRetirements;
  }
  return kTidDecisions;
}

std::string meta_process(int pid, const std::string& name) {
  return "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
         std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":" +
         quoted(name) + "}}";
}

std::string meta_thread(int pid, int tid, const std::string& name) {
  return "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
         std::to_string(pid) + ",\"tid\":" + std::to_string(tid) +
         ",\"args\":{\"name\":" + quoted(name) + "}}";
}

}  // namespace

ChromeTraceWriter::ChromeTraceWriter(const sim::System& system)
    : ChromeTraceWriter(system, Options()) {}

ChromeTraceWriter::ChromeTraceWriter(const sim::System& system,
                                     Options options)
    : options_(options) {
  if (options_.every == 0) options_.every = 1;

  // Copy every name/rate we will ever need: the writer must not dangle if
  // it outlives the System (e.g. a CLI writing the file after the run).
  proc_names_.reserve(system.proc_count());
  for (const sim::Processor& proc : system.processors()) {
    proc_names_.push_back(proc.name);
  }
  const net::Topology& topology = system.topology();
  link_names_.reserve(topology.link_count());
  link_gbps_.reserve(topology.link_count());
  for (net::LinkId link = 0; link < topology.link_count(); ++link) {
    link_names_.push_back(topology.link_name(link));
    link_gbps_.push_back(topology.bandwidth_gbps(link));
  }

  meta_.push_back(meta_process(kPidProcessors, "processors"));
  for (std::size_t p = 0; p < proc_names_.size(); ++p) {
    meta_.push_back(
        meta_thread(kPidProcessors, static_cast<int>(p), proc_names_[p]));
  }
  if (!link_names_.empty()) {
    meta_.push_back(meta_process(kPidLinks, "links"));
    for (std::size_t l = 0; l < link_names_.size(); ++l) {
      meta_.push_back(
          meta_thread(kPidLinks, static_cast<int>(l), link_names_[l]));
    }
  }
  meta_.push_back(meta_process(kPidEvents, "events"));
  meta_.push_back(meta_thread(kPidEvents, kTidArrivals, "arrivals"));
  meta_.push_back(meta_thread(kPidEvents, kTidDecisions, "decisions"));
  meta_.push_back(meta_thread(kPidEvents, kTidHedges, "hedge_launches"));
  meta_.push_back(meta_thread(kPidEvents, kTidRetirements, "retirements"));
}

bool ChromeTraceWriter::admit(std::size_t& seen) {
  const bool keep =
      (seen++ % options_.every) == 0 && events_.size() < options_.max_events;
  if (!keep) ++dropped_;
  return keep;
}

void ChromeTraceWriter::push(std::string json) {
  events_.push_back(std::move(json));
}

void ChromeTraceWriter::kernel_span(const KernelSpan& span) {
  if (!admit(seen_spans_)) return;

  std::string name = (span.kernel != nullptr && span.kernel[0] != '\0')
                         ? std::string(span.kernel)
                         : "n" + std::to_string(span.node);
  if (span.cancelled) name += ":cancelled";

  std::string json = "{\"name\":" + quoted(name) +
                     ",\"ph\":\"X\",\"ts\":" + us(span.occupied_from) +
                     ",\"dur\":" + us(span.finish - span.occupied_from) +
                     ",\"pid\":" + std::to_string(kPidProcessors) +
                     ",\"tid\":" + std::to_string(span.proc) +
                     ",\"args\":{\"instance\":" +
                     std::to_string(span.instance) +
                     ",\"node\":" + std::to_string(span.node) +
                     ",\"exec_start_ms\":" +
                     util::format_double(span.exec_start, 6) +
                     ",\"stall_ms\":" +
                     util::format_double(span.exec_start - span.occupied_from,
                                         6) +
                     ",\"noise_mult\":" +
                     util::format_double(span.noise_mult, 6) +
                     ",\"alternative\":" +
                     (span.alternative ? "true" : "false") +
                     ",\"role\":\"" + role_name(span.role) +
                     "\",\"cancelled\":" + (span.cancelled ? "true" : "false") +
                     "}}";
  push(std::move(json));
}

void ChromeTraceWriter::transfer_span(const TransferSpan& span) {
  if (!admit(seen_transfers_)) return;

  // Render the route once: "L0>L3>L7" plus its min-bandwidth bottleneck.
  std::string route;
  net::LinkId bottleneck = span.hops > 0 ? span.path[0] : 0;
  double bottleneck_gbps = std::numeric_limits<double>::infinity();
  for (std::size_t h = 0; h < span.hops; ++h) {
    const net::LinkId link = span.path[h];
    if (h > 0) route += '>';
    route += link < link_names_.size() ? link_names_[link]
                                       : "L" + std::to_string(link);
    const double gbps =
        link < link_gbps_.size() ? link_gbps_[link] : 0.0;
    if (gbps < bottleneck_gbps) {
      bottleneck_gbps = gbps;
      bottleneck = link;
    }
  }
  const std::string bottleneck_name =
      bottleneck < link_names_.size() ? link_names_[bottleneck]
                                      : "L" + std::to_string(bottleneck);

  const std::string name =
      "n" + std::to_string(span.src) + ">n" + std::to_string(span.dst);
  const std::string args =
      "{\"instance\":" + std::to_string(span.instance) +
      ",\"from\":" + std::to_string(span.from) +
      ",\"to\":" + std::to_string(span.to) +
      ",\"bytes\":" + util::format_double(span.bytes, 1) +
      ",\"route\":" + quoted(route) +
      ",\"bottleneck\":" + quoted(bottleneck_name) +
      ",\"start_ms\":" + util::format_double(span.start, 6) + "}";

  // The message occupies every route link while draining: one span per
  // hop so each link track shows its true occupancy.
  const std::string ts = us(span.drain_start);
  const std::string dur = us(span.finish - span.drain_start);
  for (std::size_t h = 0; h < span.hops; ++h) {
    push("{\"name\":" + quoted(name) + ",\"ph\":\"X\",\"ts\":" + ts +
         ",\"dur\":" + dur + ",\"pid\":" + std::to_string(kPidLinks) +
         ",\"tid\":" + std::to_string(span.path[h]) + ",\"args\":" + args +
         "}");
  }
}

void ChromeTraceWriter::instant(const InstantEvent& event) {
  if (!admit(seen_instants_)) return;

  std::string args = "{\"instance\":" + std::to_string(event.instance);
  if (event.node != dag::kInvalidNode) {
    args += ",\"node\":" + std::to_string(event.node);
  }
  if (event.proc != sim::kInvalidProc) {
    args += ",\"proc\":" + std::to_string(event.proc);
  }
  if (event.detail != nullptr && event.detail[0] != '\0') {
    args += ",\"detail\":" + quoted(event.detail);
  }
  args += "}";

  push("{\"name\":\"" + std::string(instant_name(event.kind)) +
       "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" + us(event.time) +
       ",\"pid\":" + std::to_string(kPidEvents) +
       ",\"tid\":" + std::to_string(instant_tid(event.kind)) +
       ",\"args\":" + args + "}");
}

void ChromeTraceWriter::write(std::ostream& out) const {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (const std::string& event : meta_) {
    if (!first) out << ",\n";
    first = false;
    out << event;
  }
  for (const std::string& event : events_) {
    if (!first) out << ",\n";
    first = false;
    out << event;
  }
  out << "\n]}\n";
}

void ChromeTraceWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open trace output file: " + path);
  }
  write(out);
}

}  // namespace apt::obs
